//! Weather attenuation and availability on ground–satellite links.
//!
//! §6 of the paper: *"Weather, which we did not analyze yet, also poses
//! limitations on availability: LEO network interruptions due to weather
//! attenuation on the ground-satellite links would make in-orbit compute
//! temporarily unavailable from the affected locations."* This module
//! implements that missing analysis with a simplified ITU-style rain
//! model:
//!
//! * specific attenuation `γ = k·R^α` (dB/km) from the rain rate `R`
//!   (mm/h), with Ka-band coefficients (the up/down links of both
//!   constellations are Ka/Ku);
//! * an effective rain-column slant length that grows as elevation
//!   drops (low passes cross more troposphere);
//! * a link budget margin: the link drops when attenuation exceeds it;
//! * climate presets for the rain climates relevant to the paper's use
//!   cases (tropical West Africa vs. temperate Europe vs. arid zones).

use leo_geo::Angle;
use serde::{Deserialize, Serialize};

/// Rain height (top of the melting layer) above ground, meters. ~4.8 km
/// in the tropics, lower at high latitude; a fixed mid value keeps the
/// model simple and errs conservative at high latitudes.
pub const RAIN_HEIGHT_M: f64 = 4_200.0;

/// Ka-band (~20 GHz downlink) power-law coefficients `k`, `α` of the
/// specific-attenuation relation `γ = k·R^α` (ITU-R P.838-3 ballpark).
pub const KA_BAND_K: f64 = 0.075;
/// See [`KA_BAND_K`].
pub const KA_BAND_ALPHA: f64 = 1.10;

/// A rain climate: how often it rains and how hard when it does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RainClimate {
    /// Fraction of time any rain falls (0–1).
    pub rain_probability: f64,
    /// Rain rate exceeded 0.01 % of the time, mm/h — the classic ITU
    /// planning number (R₀.₀₁).
    pub rain_rate_p001_mm_h: f64,
}

impl RainClimate {
    /// Tropical (equatorial Africa, Southeast Asia): frequent, intense.
    pub const TROPICAL: RainClimate = RainClimate {
        rain_probability: 0.08,
        rain_rate_p001_mm_h: 120.0,
    };
    /// Temperate maritime (Western Europe).
    pub const TEMPERATE: RainClimate = RainClimate {
        rain_probability: 0.05,
        rain_rate_p001_mm_h: 42.0,
    };
    /// Arid (deserts, polar deserts).
    pub const ARID: RainClimate = RainClimate {
        rain_probability: 0.01,
        rain_rate_p001_mm_h: 22.0,
    };

    /// Rain rate exceeded a fraction `p` of the time, mm/h, using the
    /// standard single-parameter scaling from R₀.₀₁
    /// (`R(p) ≈ R₀.₀₁ · (p / 0.0001)^−0.5` capped below at drizzle).
    pub fn rain_rate_at_exceedance(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 1.0, "exceedance must be in (0,1]");
        if p >= self.rain_probability {
            return 0.0; // not raining at all this often
        }
        let scaled = self.rain_rate_p001_mm_h * (p / 1e-4).powf(-0.5);
        scaled.min(self.rain_rate_p001_mm_h * 4.0)
    }
}

/// Slant length of the rain column for a link at `elevation`, meters.
///
/// Simple geometric model: the rain layer is `RAIN_HEIGHT_M` thick, so
/// the path through it is `h / sin ε`, capped at the horizontal extent
/// typical of rain cells (~20 km) for very low elevations.
pub fn rain_slant_length_m(elevation: Angle) -> f64 {
    let s = elevation.sin().max(0.05);
    (RAIN_HEIGHT_M / s).min(20_000.0 * 4.0)
}

/// Rain attenuation in dB for a link at `elevation` under rain rate
/// `rain_rate_mm_h`.
pub fn rain_attenuation_db(elevation: Angle, rain_rate_mm_h: f64) -> f64 {
    if rain_rate_mm_h <= 0.0 {
        return 0.0;
    }
    let gamma_db_km = KA_BAND_K * rain_rate_mm_h.powf(KA_BAND_ALPHA);
    // Effective path shrinks for long slants (rain cells are finite).
    let slant_km = rain_slant_length_m(elevation) / 1e3;
    let reduction = 1.0 / (1.0 + slant_km / 35.0);
    gamma_db_km * slant_km * reduction
}

/// A ground-satellite link budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Clear-sky margin available to absorb rain fade, dB. Consumer
    /// Ka-band terminals carry on the order of 6–10 dB.
    pub fade_margin_db: f64,
}

impl LinkBudget {
    /// A consumer-terminal budget (8 dB margin).
    pub const CONSUMER: LinkBudget = LinkBudget {
        fade_margin_db: 8.0,
    };
    /// A gateway-class budget (16 dB margin, larger dishes + uplink
    /// power control).
    pub const GATEWAY: LinkBudget = LinkBudget {
        fade_margin_db: 16.0,
    };

    /// True when the link survives the given rain rate at the given
    /// elevation.
    pub fn link_up(&self, elevation: Angle, rain_rate_mm_h: f64) -> bool {
        rain_attenuation_db(elevation, rain_rate_mm_h) <= self.fade_margin_db
    }

    /// The lowest elevation at which a link still closes under
    /// `rain_rate_mm_h`, found by bisection (attenuation is monotone
    /// decreasing in elevation: higher passes cross less rain).
    ///
    /// Returns `Angle::ZERO` when even a horizon-grazing link survives
    /// (no fade restriction beyond the shell's own elevation mask) and
    /// `None` when not even a zenith link closes — a total outage for
    /// this budget at this rain rate.
    pub fn min_surviving_elevation(&self, rain_rate_mm_h: f64) -> Option<Angle> {
        let up = |deg: f64| self.link_up(Angle::from_degrees(deg), rain_rate_mm_h);
        if !up(90.0) {
            return None;
        }
        if up(0.0) {
            return Some(Angle::ZERO);
        }
        let (mut lo, mut hi) = (0.0f64, 90.0f64); // link down at lo, up at hi
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if up(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(Angle::from_degrees(hi))
    }

    /// Long-run availability (0–1) of a link at `elevation` in a
    /// climate: the fraction of time attenuation stays within the
    /// margin, found by bisecting the exceedance curve.
    pub fn availability(&self, elevation: Angle, climate: &RainClimate) -> f64 {
        // Attenuation grows as exceedance p shrinks (rarer = harder
        // rain). Find the outage probability: the largest p whose rain
        // rate still breaks the link.
        let breaks = |p: f64| !self.link_up(elevation, climate.rain_rate_at_exceedance(p));
        if !breaks(1e-7) {
            return 1.0; // survives even the most extreme rain modeled
        }
        if breaks(climate.rain_probability) {
            // Any rain at all breaks it (un-physical for sane margins,
            // but keep the model total).
            return 1.0 - climate.rain_probability;
        }
        let (mut lo, mut hi) = (1e-7, climate.rain_probability);
        for _ in 0..60 {
            let mid = (lo * hi).sqrt(); // bisect in log space
            if breaks(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        1.0 - lo
    }
}

/// Availability of in-orbit compute from a ground site: the chance that
/// at least one of `elevations` (the currently reachable satellites'
/// elevations) has a working link. Rain is common-mode at one site, so
/// the *deepest* fade (lowest elevation requirement) dominates: we take
/// the best single link.
pub fn site_availability(budget: &LinkBudget, climate: &RainClimate, elevations: &[Angle]) -> f64 {
    elevations
        .iter()
        .map(|&e| budget.availability(e, climate))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_rain_means_no_attenuation() {
        assert_eq!(rain_attenuation_db(Angle::from_degrees(45.0), 0.0), 0.0);
    }

    #[test]
    fn attenuation_grows_with_rain_rate() {
        let e = Angle::from_degrees(40.0);
        let a = rain_attenuation_db(e, 10.0);
        let b = rain_attenuation_db(e, 50.0);
        let c = rain_attenuation_db(e, 120.0);
        assert!(a < b && b < c);
        assert!(a > 0.0);
    }

    #[test]
    fn low_elevation_links_fade_harder() {
        let hard = rain_attenuation_db(Angle::from_degrees(10.0), 30.0);
        let easy = rain_attenuation_db(Angle::from_degrees(80.0), 30.0);
        assert!(hard > easy * 1.5, "{hard} vs {easy}");
    }

    #[test]
    fn ka_band_heavy_rain_at_mid_elevation_is_double_digit_db() {
        // 120 mm/h tropical downpour at 40°: tens of dB — far beyond any
        // consumer margin, which is why tropical availability suffers.
        let a = rain_attenuation_db(Angle::from_degrees(40.0), 120.0);
        assert!(a > 10.0, "{a} dB");
    }

    #[test]
    fn exceedance_curve_is_monotone() {
        let c = RainClimate::TROPICAL;
        let mut prev = f64::INFINITY;
        for p in [1e-6, 1e-5, 1e-4, 1e-3, 1e-2] {
            let r = c.rain_rate_at_exceedance(p);
            assert!(r <= prev, "p={p}: {r} > {prev}");
            prev = r;
        }
    }

    #[test]
    fn it_is_usually_not_raining() {
        assert_eq!(RainClimate::TEMPERATE.rain_rate_at_exceedance(0.2), 0.0);
        assert_eq!(RainClimate::ARID.rain_rate_at_exceedance(0.05), 0.0);
    }

    #[test]
    fn consumer_availability_ordering_matches_climate_severity() {
        let e = Angle::from_degrees(40.0);
        let b = LinkBudget::CONSUMER;
        let tropical = b.availability(e, &RainClimate::TROPICAL);
        let temperate = b.availability(e, &RainClimate::TEMPERATE);
        let arid = b.availability(e, &RainClimate::ARID);
        assert!(arid >= temperate && temperate >= tropical);
        assert!(tropical > 0.9, "tropical availability {tropical}");
        assert!(arid > 0.999, "arid availability {arid}");
    }

    #[test]
    fn gateway_budget_beats_consumer_budget() {
        let e = Angle::from_degrees(30.0);
        let c = RainClimate::TROPICAL;
        assert!(
            LinkBudget::GATEWAY.availability(e, &c) >= LinkBudget::CONSUMER.availability(e, &c)
        );
    }

    #[test]
    fn site_availability_uses_the_best_elevation() {
        let b = LinkBudget::CONSUMER;
        let c = RainClimate::TROPICAL;
        let low = Angle::from_degrees(25.0);
        let high = Angle::from_degrees(75.0);
        let combined = site_availability(&b, &c, &[low, high]);
        assert_eq!(
            combined,
            b.availability(high, &c).max(b.availability(low, &c))
        );
        assert!(combined >= b.availability(low, &c));
    }

    #[test]
    fn empty_site_has_zero_availability() {
        assert_eq!(
            site_availability(&LinkBudget::CONSUMER, &RainClimate::ARID, &[]),
            0.0
        );
    }

    #[test]
    fn min_surviving_elevation_is_zero_in_clear_sky() {
        assert_eq!(
            LinkBudget::CONSUMER.min_surviving_elevation(0.0),
            Some(Angle::ZERO)
        );
    }

    #[test]
    fn min_surviving_elevation_brackets_the_link_budget() {
        // 17 mm/h on a consumer budget: zenith survives, the horizon does
        // not — the boundary must split exactly between up and down.
        let b = LinkBudget::CONSUMER;
        let e = b.min_surviving_elevation(17.0).expect("zenith survives");
        assert!(e > Angle::ZERO && e < Angle::from_degrees(90.0));
        assert!(b.link_up(Angle::from_degrees(e.degrees() + 0.01), 17.0));
        assert!(!b.link_up(Angle::from_degrees(e.degrees() - 0.01), 17.0));
    }

    #[test]
    fn tropical_downpour_is_a_total_outage_for_consumer_terminals() {
        // 120 mm/h: >15 dB even at zenith, far over the 8 dB margin.
        assert_eq!(LinkBudget::CONSUMER.min_surviving_elevation(120.0), None);
    }

    #[test]
    fn more_margin_lowers_the_surviving_elevation() {
        let rate = 17.0;
        let c = LinkBudget::CONSUMER.min_surviving_elevation(rate).unwrap();
        let g = LinkBudget::GATEWAY.min_surviving_elevation(rate).unwrap();
        assert!(g <= c, "gateway {g:?} vs consumer {c:?}");
    }

    proptest! {
        #[test]
        fn prop_min_surviving_elevation_is_consistent_with_link_up(
            rate in 0.0..200.0f64,
            margin in 1.0..30.0f64,
        ) {
            let b = LinkBudget { fade_margin_db: margin };
            match b.min_surviving_elevation(rate) {
                None => prop_assert!(!b.link_up(Angle::from_degrees(90.0), rate)),
                Some(e) => {
                    prop_assert!(b.link_up(
                        Angle::from_degrees((e.degrees() + 0.01).min(90.0)), rate));
                    if e > Angle::ZERO {
                        prop_assert!(!b.link_up(
                            Angle::from_degrees(e.degrees() - 0.01), rate));
                    }
                }
            }
        }

        #[test]
        fn prop_availability_is_a_probability(
            el in 5.0..90.0f64,
            margin in 1.0..30.0f64,
        ) {
            let b = LinkBudget { fade_margin_db: margin };
            for c in [RainClimate::TROPICAL, RainClimate::TEMPERATE, RainClimate::ARID] {
                let a = b.availability(Angle::from_degrees(el), &c);
                prop_assert!((0.0..=1.0).contains(&a));
                // Can never be worse than "down whenever it rains".
                prop_assert!(a >= 1.0 - c.rain_probability - 1e-9);
            }
        }

        #[test]
        fn prop_more_margin_never_hurts(
            el in 5.0..90.0f64,
            m1 in 1.0..20.0f64,
            dm in 0.5..10.0f64,
        ) {
            let c = RainClimate::TROPICAL;
            let a1 = LinkBudget { fade_margin_db: m1 }
                .availability(Angle::from_degrees(el), &c);
            let a2 = LinkBudget { fade_margin_db: m1 + dm }
                .availability(Angle::from_degrees(el), &c);
            prop_assert!(a2 >= a1 - 1e-9);
        }

        #[test]
        fn prop_higher_elevation_never_hurts(
            e1 in 5.0..80.0f64,
            de in 1.0..10.0f64,
            margin in 2.0..20.0f64,
        ) {
            let b = LinkBudget { fade_margin_db: margin };
            let c = RainClimate::TEMPERATE;
            let lo = b.availability(Angle::from_degrees(e1), &c);
            let hi = b.availability(Angle::from_degrees(e1 + de), &c);
            prop_assert!(hi >= lo - 1e-9);
        }
    }
}
