//! Ground-station pass prediction and connection hand-over schedules.
//!
//! §2 of the paper: *"a ground station sees a particular LEO satellite
//! only for a few minutes. After this time, if continuous connectivity
//! is desired, the ground station must execute a connection hand-off to
//! another LEO satellite that becomes reachable."* This module computes
//! those passes and hand-over schedules for the plain network service —
//! the machinery the compute-layer sessions in `leo-core` generalize to
//! whole user groups.

use leo_constellation::{Constellation, SatId};
use leo_geo::{Ecef, Geodetic};
use serde::{Deserialize, Serialize};

/// One visibility pass of a satellite over a ground station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pass {
    /// The satellite.
    pub sat: SatId,
    /// First sample time the satellite was visible, seconds.
    pub rise_s: f64,
    /// Last sample time it was visible, seconds.
    pub set_s: f64,
    /// Minimum slant range over the pass, meters (closest approach).
    pub min_range_m: f64,
}

impl Pass {
    /// Pass duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.set_s - self.rise_s
    }
}

/// Predicts every visibility pass of every satellite over `ground`
/// within `[start_s, end_s]`, sampling each `step_s` seconds.
///
/// Sampling bounds the rise/set accuracy to ±`step_s`; the paper's
/// minutes-scale passes are well resolved at 10 s steps.
pub fn predict_passes(
    constellation: &Constellation,
    ground: Geodetic,
    start_s: f64,
    end_s: f64,
    step_s: f64,
) -> Vec<Pass> {
    assert!(step_s > 0.0 && end_s >= start_s);
    let ground_ecef: Ecef = ground.to_ecef_spherical();
    let mut open: std::collections::HashMap<SatId, Pass> = std::collections::HashMap::new();
    let mut done: Vec<Pass> = Vec::new();
    let steps = ((end_s - start_s) / step_s).round() as usize;
    for i in 0..=steps {
        let t = start_s + i as f64 * step_s;
        let snap = constellation.snapshot(t);
        let visible = crate::visibility::visible_sats(constellation, &snap, ground, ground_ecef);
        let mut seen: std::collections::HashSet<SatId> = std::collections::HashSet::new();
        for v in visible {
            seen.insert(v.id);
            open.entry(v.id)
                .and_modify(|p| {
                    p.set_s = t;
                    p.min_range_m = p.min_range_m.min(v.range_m);
                })
                .or_insert(Pass {
                    sat: v.id,
                    rise_s: t,
                    set_s: t,
                    min_range_m: v.range_m,
                });
        }
        // Close passes that ended this step.
        let ended: Vec<SatId> = open
            .keys()
            .filter(|id| !seen.contains(id))
            .copied()
            .collect();
        for id in ended {
            done.push(open.remove(&id).expect("open pass"));
        }
    }
    done.extend(open.into_values());
    done.sort_by(|a, b| a.rise_s.total_cmp(&b.rise_s).then(a.sat.cmp(&b.sat)));
    done
}

/// One entry of a hand-over schedule: serve from `sat` during
/// `[from_s, until_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeSlot {
    /// Serving satellite.
    pub sat: SatId,
    /// Slot start, seconds.
    pub from_s: f64,
    /// Slot end, seconds.
    pub until_s: f64,
}

/// Builds a max-stickiness hand-over schedule from predicted passes:
/// at each hand-over, pick the visible satellite whose pass lasts
/// longest, and ride it until it sets. This minimizes the hand-over
/// count for a single ground station (greedy interval covering, which
/// is optimal for this objective).
///
/// Window boundaries are strict: no slot starts at `end_s` and no slot
/// collapses to zero length — a pass that merely grazes the window (or
/// a degenerate single-sample pass with `rise_s == set_s`) contributes
/// nothing.
pub fn handover_schedule(passes: &[Pass], start_s: f64, end_s: f64) -> Vec<ServeSlot> {
    let mut slots = Vec::new();
    let mut t = start_s;
    while t < end_s {
        // Among passes covering t, take the one that sets last. The
        // `set_s > t` bound drops zero-length passes outright.
        let best = passes
            .iter()
            .filter(|p| p.rise_s <= t + 1e-9 && p.set_s > t)
            .max_by(|a, b| a.set_s.total_cmp(&b.set_s));
        match best {
            Some(p) => {
                let until = p.set_s.min(end_s);
                if until <= t {
                    // Defensive: a slot that cannot advance the clock
                    // would loop forever; the filters above make this
                    // unreachable, but a guard beats a hang.
                    break;
                }
                slots.push(ServeSlot {
                    sat: p.sat,
                    from_s: t,
                    until_s: until,
                });
                t = until;
            }
            None => {
                // Coverage gap: jump to the next rise, if any.
                match passes
                    .iter()
                    .filter(|p| p.rise_s > t)
                    .map(|p| p.rise_s)
                    .min_by(f64::total_cmp)
                {
                    Some(next) if next < end_s => t = next,
                    _ => break,
                }
            }
        }
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;

    fn passes_for(lat: f64, lon: f64) -> Vec<Pass> {
        let c = presets::starlink_550_only();
        predict_passes(&c, Geodetic::ground(lat, lon), 0.0, 3600.0, 10.0)
    }

    #[test]
    fn passes_last_a_few_minutes() {
        // §2: "a ground station sees a particular LEO satellite only for
        // a few minutes". Interior passes (not clipped by the window)
        // must sit in the 10 s – 12 min band for the 550 km / 25° shell.
        let passes = passes_for(30.0, 10.0);
        assert!(passes.len() > 20, "only {} passes", passes.len());
        for p in passes.iter().filter(|p| p.rise_s > 0.0 && p.set_s < 3600.0) {
            assert!(
                p.duration_s() <= 720.0,
                "pass {} lasts {} s",
                p.sat,
                p.duration_s()
            );
        }
        let longest = passes.iter().map(|p| p.duration_s()).fold(0.0, f64::max);
        assert!(longest > 200.0, "longest pass only {longest} s");
    }

    #[test]
    fn min_range_is_within_geometric_bounds() {
        let max_range = leo_geo::look::max_slant_range_m(550e3, leo_geo::Angle::from_degrees(25.0));
        for p in passes_for(0.0, 0.0) {
            assert!(p.min_range_m >= 550e3 - 1e3);
            assert!(p.min_range_m <= max_range + 1e3);
        }
    }

    #[test]
    fn passes_of_one_satellite_do_not_overlap() {
        let passes = passes_for(45.0, -30.0);
        let mut by_sat: std::collections::HashMap<SatId, Vec<&Pass>> = Default::default();
        for p in &passes {
            by_sat.entry(p.sat).or_default().push(p);
        }
        for (sat, mut ps) in by_sat {
            ps.sort_by(|a, b| a.rise_s.total_cmp(&b.rise_s));
            for w in ps.windows(2) {
                assert!(w[0].set_s < w[1].rise_s, "{sat}: overlapping passes");
            }
        }
    }

    #[test]
    fn schedule_is_contiguous_where_coverage_exists() {
        let passes = passes_for(20.0, 50.0);
        let slots = handover_schedule(&passes, 0.0, 3600.0);
        assert!(!slots.is_empty());
        for w in slots.windows(2) {
            assert!(w[0].until_s <= w[1].from_s + 1e-9);
        }
        // 550-shell coverage at 20° latitude is continuous: no gaps.
        let covered: f64 = slots.iter().map(|s| s.until_s - s.from_s).sum();
        assert!(covered > 3590.0, "covered {covered} s of 3600");
    }

    #[test]
    fn greedy_schedule_rides_each_satellite_to_its_set() {
        let passes = passes_for(20.0, 50.0);
        let slots = handover_schedule(&passes, 0.0, 3600.0);
        for s in &slots[..slots.len() - 1] {
            let pass = passes
                .iter()
                .find(|p| {
                    p.sat == s.sat && p.rise_s <= s.from_s + 1e-9 && p.set_s >= s.until_s - 1e-9
                })
                .expect("slot maps to a pass");
            assert!(
                (pass.set_s - s.until_s).abs() < 1e-9,
                "slot ends before its pass sets"
            );
        }
    }

    #[test]
    fn schedule_respects_the_window() {
        let passes = passes_for(0.0, 0.0);
        let slots = handover_schedule(&passes, 600.0, 1200.0);
        for s in &slots {
            assert!(s.from_s >= 600.0 - 1e-9);
            assert!(s.until_s <= 1200.0 + 1e-9);
        }
    }

    fn pass(sat: u32, rise_s: f64, set_s: f64) -> Pass {
        Pass {
            sat: SatId(sat),
            rise_s,
            set_s,
            min_range_m: 600e3,
        }
    }

    #[test]
    fn zero_length_passes_produce_no_slots() {
        // A single-sample pass (rise == set) covers no open interval.
        let passes = [pass(0, 100.0, 100.0)];
        assert!(handover_schedule(&passes, 0.0, 200.0).is_empty());
        // Even amid real coverage it must not surface.
        let mixed = [pass(0, 0.0, 50.0), pass(1, 50.0, 50.0), pass(2, 50.0, 90.0)];
        let slots = handover_schedule(&mixed, 0.0, 90.0);
        assert!(slots.iter().all(|s| s.until_s > s.from_s));
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[1].sat, SatId(2));
    }

    #[test]
    fn no_slot_starts_at_the_window_end() {
        // One pass ends exactly at end_s, the next rises there: the gap
        // jump must not emit a slot beginning at end_s.
        let passes = [pass(0, 0.0, 300.0), pass(1, 300.0, 600.0)];
        let slots = handover_schedule(&passes, 0.0, 300.0);
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].until_s, 300.0);
        // And a pass rising exactly at end_s contributes nothing either,
        // even when it is the only pass.
        let only = [pass(7, 300.0, 600.0)];
        assert!(handover_schedule(&only, 0.0, 300.0).is_empty());
    }

    #[test]
    fn schedule_slots_always_have_positive_length() {
        let passes = passes_for(20.0, 50.0);
        for (a, b) in [(0.0, 3600.0), (595.0, 605.0), (0.0, 10.0)] {
            for s in handover_schedule(&passes, a, b) {
                assert!(s.until_s > s.from_s, "zero-length slot {s:?}");
                assert!(s.from_s < b, "slot starts at/after end_s: {s:?}");
            }
        }
    }

    #[test]
    fn polar_station_on_inclined_shell_sees_gaps() {
        // 53°-inclined shell leaves the high Arctic uncovered.
        let c = presets::starlink_550_only();
        let passes = predict_passes(&c, Geodetic::ground(85.0, 0.0), 0.0, 1800.0, 10.0);
        assert!(passes.is_empty());
        assert!(handover_schedule(&passes, 0.0, 1800.0).is_empty());
    }
}
