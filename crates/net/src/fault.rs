//! Fault injection: outage masks over the network substrate.
//!
//! §4–§5 of the paper: satellite-servers die without immediate
//! replacement, and §6 notes weather interruptions on the ground–sat
//! links. The routing engine and visibility index are fault-blind on
//! their own; this module supplies the mask they consult so that dead
//! satellites, cut ISLs, and rain-faded access links never carry
//! traffic or enter candidate sets.
//!
//! The split mirrors the engine's compile/refresh split:
//!
//! * [`FaultConfig`] — the *scenario*: a deterministic per-satellite
//!   death schedule ([`FailureSchedule`]), explicit ISL cuts, and a rain
//!   fade on the ground segment ([`RainFade`]). Time-invariant, built
//!   once per run.
//! * [`FaultPlan`] — the *instantaneous mask* the hot paths consume:
//!   which satellites are dead now, which links are cut, and the
//!   minimum elevation an access link needs to close through the rain
//!   ([`GroundFade`]). Built per snapshot by [`FaultConfig::plan_at`].
//!
//! An empty plan is a guaranteed no-op: every consumer checks
//! [`FaultPlan::is_empty`] first and falls through to the unmasked code
//! path, so results stay byte-identical to a run with no plan at all.

use crate::weather::{LinkBudget, RainClimate};
use leo_constellation::SatId;
use leo_geo::{look, Angle, Ecef};
use serde::{Deserialize, Serialize};

/// Deterministic per-satellite server death times, seconds after the
/// epoch (`INFINITY` = never dies). The schedule is the bridge between
/// a stochastic failure model (e.g. `leo-core`'s exponential draws) and
/// the per-instant [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureSchedule {
    death_time_s: Vec<f64>,
}

impl FailureSchedule {
    /// A schedule over `num_sats` satellites where nothing ever dies.
    pub fn never(num_sats: usize) -> FailureSchedule {
        FailureSchedule {
            death_time_s: vec![f64::INFINITY; num_sats],
        }
    }

    /// A schedule from explicit death times (seconds; `INFINITY` = never).
    ///
    /// # Panics
    /// Panics when any death time is NaN.
    pub fn from_death_times(death_time_s: Vec<f64>) -> FailureSchedule {
        assert!(death_time_s.iter().all(|t| !t.is_nan()), "NaN death time");
        FailureSchedule { death_time_s }
    }

    /// Number of satellites covered.
    pub fn len(&self) -> usize {
        self.death_time_s.len()
    }

    /// True when the schedule covers no satellites.
    pub fn is_empty(&self) -> bool {
        self.death_time_s.is_empty()
    }

    /// The death time of one satellite's server, seconds (`INFINITY`
    /// when never, or when `sat` is outside the schedule).
    pub fn death_time_s(&self, sat: SatId) -> f64 {
        self.death_time_s
            .get(sat.0 as usize)
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    /// True when the satellite's server is still alive at `t`.
    pub fn alive(&self, sat: SatId, t: f64) -> bool {
        t < self.death_time_s(sat)
    }
}

/// A rain scenario on the ground segment: one budget, one rain rate,
/// common-mode across every user (rain at a site hits all its links).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RainFade {
    /// The terminal's link budget.
    pub budget: LinkBudget,
    /// Rain rate the scenario holds, mm/h.
    pub rain_rate_mm_h: f64,
}

impl RainFade {
    /// A fade scenario at the rain rate a climate exceeds a fraction `p`
    /// of the time — e.g. `p = 0.005` is a solidly rainy episode.
    pub fn at_exceedance(budget: LinkBudget, climate: &RainClimate, p: f64) -> RainFade {
        RainFade {
            budget,
            rain_rate_mm_h: climate.rain_rate_at_exceedance(p),
        }
    }

    /// The access-link restriction this scenario imposes.
    pub fn ground_fade(&self) -> GroundFade {
        match self.budget.min_surviving_elevation(self.rain_rate_mm_h) {
            None => GroundFade::Outage,
            Some(e) if e.radians() <= 0.0 => GroundFade::Clear,
            Some(e) => GroundFade::MinElevation(e),
        }
    }
}

/// The instantaneous state of the ground segment under rain.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GroundFade {
    /// No restriction beyond each shell's own elevation mask.
    #[default]
    Clear,
    /// Links close only above this elevation (raises the effective mask
    /// where it exceeds the shell minimum).
    MinElevation(Angle),
    /// Not even a zenith link closes: the ground segment is down.
    Outage,
}

/// The per-instant outage mask the routing engine and visibility index
/// consume. Dense over satellites, cheap to probe on hot paths.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// `dead[sat]` — empty when no satellite is dead.
    dead: Vec<bool>,
    num_dead: usize,
    /// Cut ISLs as normalized `(lo, hi)` id pairs, sorted for binary
    /// search.
    cut: Vec<(u32, u32)>,
    fade: GroundFade,
}

fn norm_pair(a: SatId, b: SatId) -> (u32, u32) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

impl FaultPlan {
    /// The no-fault plan. Consumers treat it as a guaranteed no-op.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan masks nothing — the byte-identity fast path.
    pub fn is_empty(&self) -> bool {
        self.num_dead == 0 && self.cut.is_empty() && self.fade == GroundFade::Clear
    }

    /// Marks a satellite's server dead (its ISLs and access links all
    /// drop, and it leaves every candidate set).
    pub fn kill(&mut self, sat: SatId) {
        let i = sat.0 as usize;
        if self.dead.len() <= i {
            self.dead.resize(i + 1, false);
        }
        if !self.dead[i] {
            self.dead[i] = true;
            self.num_dead += 1;
        }
    }

    /// Cuts one ISL (either endpoint order).
    pub fn cut_link(&mut self, a: SatId, b: SatId) {
        let pair = norm_pair(a, b);
        if let Err(pos) = self.cut.binary_search(&pair) {
            self.cut.insert(pos, pair);
        }
    }

    /// Imposes a ground-segment fade.
    pub fn set_ground_fade(&mut self, fade: GroundFade) {
        self.fade = fade;
    }

    /// Number of dead satellites.
    pub fn num_dead(&self) -> usize {
        self.num_dead
    }

    /// True when the satellite's server is dead in this plan.
    pub fn sat_dead(&self, sat: SatId) -> bool {
        self.dead.get(sat.0 as usize).copied().unwrap_or(false)
    }

    /// True when this specific ISL is cut (either endpoint order).
    pub fn link_cut(&self, a: SatId, b: SatId) -> bool {
        self.cut.binary_search(&norm_pair(a, b)).is_ok()
    }

    /// True when an ISL between `a` and `b` cannot carry traffic: an
    /// endpoint is dead, or the link itself is cut.
    pub fn isl_edge_masked(&self, a: SatId, b: SatId) -> bool {
        self.sat_dead(a) || self.sat_dead(b) || self.link_cut(a, b)
    }

    /// The ground-segment restriction in force.
    pub fn ground_fade(&self) -> GroundFade {
        self.fade
    }

    /// True when the *access link* from `ground_ecef` to a satellite at
    /// `sat_pos` is faded out by rain — independent of the shell's own
    /// elevation mask, which the caller has already applied, and of
    /// server death, which [`FaultPlan::sat_dead`] covers.
    pub fn access_link_masked(&self, ground_ecef: Ecef, sat_pos: Ecef) -> bool {
        match self.fade {
            GroundFade::Clear => false,
            GroundFade::Outage => true,
            GroundFade::MinElevation(e) => !look::is_visible_spherical(ground_ecef, sat_pos, e),
        }
    }
}

/// A fault scenario: the time-invariant description that yields a
/// [`FaultPlan`] per instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultConfig {
    /// Per-satellite server death times, if any fail.
    pub schedule: Option<FailureSchedule>,
    /// ISLs severed for the whole scenario (debris hit, pointing loss).
    pub cut_links: Vec<(SatId, SatId)>,
    /// Rain on the ground segment, if any.
    pub rain: Option<RainFade>,
}

impl FaultConfig {
    /// A scenario with no faults at all. Its plans are all empty, so a
    /// service configured with it is byte-identical to one without.
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// True when no plan this config produces can ever mask anything.
    pub fn is_none(&self) -> bool {
        self.schedule.is_none() && self.cut_links.is_empty() && self.rain.is_none()
    }

    /// The outage mask at time `t`.
    pub fn plan_at(&self, t: f64) -> FaultPlan {
        let mut plan = FaultPlan::empty();
        if let Some(s) = &self.schedule {
            for i in 0..s.len() {
                let id = SatId(i as u32);
                if !s.alive(id, t) {
                    plan.kill(id);
                }
            }
        }
        for &(a, b) in &self.cut_links {
            plan.cut_link(a, b);
        }
        if let Some(rain) = &self.rain {
            plan.set_ground_fade(rain.ground_fade());
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_geo::Geodetic;

    #[test]
    fn empty_plan_masks_nothing() {
        let p = FaultPlan::empty();
        assert!(p.is_empty());
        assert_eq!(p.num_dead(), 0);
        assert!(!p.sat_dead(SatId(0)));
        assert!(!p.isl_edge_masked(SatId(0), SatId(1)));
        let g = Geodetic::ground(0.0, 0.0).to_ecef_spherical();
        assert!(!p.access_link_masked(g, Ecef::new(7e6, 0.0, 0.0)));
    }

    #[test]
    fn killing_a_satellite_masks_all_its_edges() {
        let mut p = FaultPlan::empty();
        p.kill(SatId(7));
        p.kill(SatId(7)); // idempotent
        assert!(!p.is_empty());
        assert_eq!(p.num_dead(), 1);
        assert!(p.sat_dead(SatId(7)));
        assert!(p.isl_edge_masked(SatId(7), SatId(3)));
        assert!(p.isl_edge_masked(SatId(3), SatId(7)));
        assert!(!p.isl_edge_masked(SatId(3), SatId(4)));
    }

    #[test]
    fn cut_links_are_order_independent() {
        let mut p = FaultPlan::empty();
        p.cut_link(SatId(9), SatId(2));
        assert!(p.link_cut(SatId(2), SatId(9)));
        assert!(p.link_cut(SatId(9), SatId(2)));
        assert!(!p.link_cut(SatId(2), SatId(8)));
        assert!(p.isl_edge_masked(SatId(2), SatId(9)));
        assert!(!p.sat_dead(SatId(2)), "a cut is not a death");
    }

    #[test]
    fn schedule_gates_deaths_by_time() {
        let s = FailureSchedule::from_death_times(vec![100.0, f64::INFINITY]);
        assert!(s.alive(SatId(0), 99.9));
        assert!(!s.alive(SatId(0), 100.0), "death at exactly t");
        assert!(s.alive(SatId(1), 1e12));
        assert!(s.alive(SatId(99), 1e12), "outside the schedule = alive");
        assert_eq!(FailureSchedule::never(3).len(), 3);
        assert!(FailureSchedule::never(3).alive(SatId(2), f64::MAX));
    }

    #[test]
    fn config_plans_respect_the_schedule_clock() {
        let cfg = FaultConfig {
            schedule: Some(FailureSchedule::from_death_times(vec![
                50.0,
                f64::INFINITY,
                200.0,
            ])),
            ..FaultConfig::default()
        };
        assert!(cfg.plan_at(0.0).is_empty());
        let mid = cfg.plan_at(60.0);
        assert!(mid.sat_dead(SatId(0)) && !mid.sat_dead(SatId(2)));
        let late = cfg.plan_at(500.0);
        assert_eq!(late.num_dead(), 2);
    }

    #[test]
    fn none_config_yields_empty_plans_forever() {
        let cfg = FaultConfig::none();
        assert!(cfg.is_none());
        for t in [0.0, 1e3, 1e9] {
            assert!(cfg.plan_at(t).is_empty());
        }
    }

    #[test]
    fn rain_fade_maps_to_the_three_ground_states() {
        let clear = RainFade {
            budget: LinkBudget::CONSUMER,
            rain_rate_mm_h: 0.0,
        };
        assert_eq!(clear.ground_fade(), GroundFade::Clear);
        let moderate = RainFade {
            budget: LinkBudget::CONSUMER,
            rain_rate_mm_h: 17.0,
        };
        match moderate.ground_fade() {
            GroundFade::MinElevation(e) => {
                assert!(e > Angle::ZERO && e < Angle::from_degrees(90.0))
            }
            other => panic!("expected a raised elevation mask, got {other:?}"),
        }
        let downpour = RainFade {
            budget: LinkBudget::CONSUMER,
            rain_rate_mm_h: 120.0,
        };
        assert_eq!(downpour.ground_fade(), GroundFade::Outage);
    }

    #[test]
    fn faded_plan_masks_low_elevation_access_links() {
        let mut p = FaultPlan::empty();
        p.set_ground_fade(GroundFade::MinElevation(Angle::from_degrees(60.0)));
        assert!(!p.is_empty());
        let g = Geodetic::ground(0.0, 0.0).to_ecef_spherical();
        // Straight overhead: well above any mask.
        let zenith = Ecef::new(g.0.x + 550e3 * g.0.x / g.0.norm(), g.0.y, g.0.z);
        assert!(!p.access_link_masked(g, zenith));
        // A satellite over the pole sits below 60° elevation from the
        // equator at LEO altitude.
        let low = Ecef::new(0.0, 0.0, 6.92e6);
        assert!(p.access_link_masked(g, low));
        p.set_ground_fade(GroundFade::Outage);
        assert!(p.access_link_masked(g, zenith), "outage masks even zenith");
    }

    #[test]
    fn exceedance_constructor_uses_the_climate_curve() {
        let f = RainFade::at_exceedance(LinkBudget::CONSUMER, &RainClimate::ARID, 0.5);
        assert_eq!(f.rain_rate_mm_h, 0.0, "arid is usually dry");
        let t = RainFade::at_exceedance(LinkBudget::CONSUMER, &RainClimate::TROPICAL, 0.001);
        assert!(t.rain_rate_mm_h > 10.0);
    }
}
