//! Congestion-aware packet engine: window-based senders over drop-tail
//! FIFO links with retransmission and ECN-style marking.
//!
//! [`packet`](crate::packet) models open-loop CBR flows: sources emit at a
//! fixed rate no matter what the network does, so a transfer routed through
//! it can only lose packets, never react to loss. This module closes the
//! loop. A [`WindowedFlow`] keeps a congestion window, paces packets at
//! `cwnd / srtt`, retransmits on triple-duplicate-ACK or timeout, and
//! shrinks its window under either TCP-Reno-style AIMD or DCTCP-style
//! proportional ECN response ([`CcAlgorithm`]). Links are drop-tail FIFO
//! queues that set a congestion-experienced mark on packets enqueued while
//! the queue occupancy is at or above a configurable threshold
//! ([`CongestionLink::with_ecn`]).
//!
//! Background traffic that does *not* react to congestion — Earth-observation
//! bulk downlinks, aggregated user load — is modelled by [`CbrFlow`], the
//! same open-loop shape as `packet::Flow`, sharing the queues with windowed
//! senders.
//!
//! # Model and simplifications
//!
//! * Data packets are fixed-size (`packet_bits`); a transfer of `packets`
//!   distinct packets completes when the **receiver** has seen every
//!   distinct sequence number at least once ([`WindowedStats::completion_s`]).
//! * ACKs are per-data-packet, carry the cumulative next-expected sequence
//!   number plus the triggering packet's sequence and CE mark, and return
//!   over an idealized reverse path: a pure delay equal to the sum of the
//!   forward route's propagation delays (no reverse-path queueing or
//!   serialization).
//! * The retransmission timeout is a fixed per-flow duration (no adaptive
//!   Jacobson/Karels RTO); the smoothed RTT is still tracked for pacing.
//! * Senders pace at `cwnd · packet_bits / srtt` rather than dumping whole
//!   windows back-to-back, so an uncontended transfer with a window at or
//!   above the path's bandwidth-delay product runs at line rate without
//!   overflowing the first queue.
//!
//! Determinism: the engine is a single sequential event loop; ties in event
//! time are broken by a fixed event-kind rank (transmit completions before
//! ACKs before timeouts before pacing before emissions before enqueues) and
//! then by insertion order. Two runs of the same configuration produce
//! identical results, independent of thread count or observability level.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Identifier of a link in a [`CongestionNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CLinkId(pub usize);

/// Identifier of a windowed (congestion-controlled) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SenderId(pub usize);

/// Identifier of an open-loop CBR cross-traffic flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CbrId(pub usize);

/// A directed link: transmission rate, propagation delay, a drop-tail FIFO
/// queue, and an optional ECN marking threshold.
#[derive(Debug, Clone, Copy)]
pub struct CongestionLink {
    /// Transmission rate, bits per second.
    pub rate_bps: f64,
    /// Propagation delay, seconds.
    pub prop_delay_s: f64,
    /// Queue capacity in packets (excluding the packet in service).
    pub queue_packets: usize,
    /// Packets enqueued while the queue already holds at least this many
    /// packets are marked congestion-experienced. `None` disables marking.
    pub ecn_threshold: Option<usize>,
}

impl CongestionLink {
    /// Creates a link with marking disabled.
    pub fn new(rate_bps: f64, prop_delay_s: f64, queue_packets: usize) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "link rate must be positive and finite, got {rate_bps}"
        );
        assert!(
            prop_delay_s.is_finite() && prop_delay_s >= 0.0,
            "propagation delay must be non-negative and finite, got {prop_delay_s}"
        );
        Self {
            rate_bps,
            prop_delay_s,
            queue_packets,
            ecn_threshold: None,
        }
    }

    /// Enables ECN-style marking at the given queue-occupancy threshold.
    pub fn with_ecn(mut self, threshold: usize) -> Self {
        assert!(
            threshold <= self.queue_packets,
            "ECN threshold {threshold} exceeds queue capacity {}",
            self.queue_packets
        );
        self.ecn_threshold = Some(threshold);
        self
    }
}

/// Congestion-control algorithm for a [`WindowedFlow`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CcAlgorithm {
    /// TCP-Reno-style AIMD: slow start below `ssthresh`, additive increase
    /// above it, multiplicative decrease on loss, and a half-window cut at
    /// most once per RTT when an ECN echo arrives.
    Aimd,
    /// DCTCP: per-window marked-ACK fraction feeds an EWMA `alpha` with the
    /// given gain, and the window scales by `1 - alpha/2` once per window
    /// that saw any mark. Loss is still handled Reno-style.
    Dctcp {
        /// EWMA gain `g` for the marked fraction (DCTCP paper uses 1/16).
        gain: f64,
    },
}

/// A window-based, congestion-controlled transfer of `packets` fixed-size
/// packets over a multi-hop route.
#[derive(Debug, Clone)]
pub struct WindowedFlow {
    /// Links traversed in order.
    pub route: Vec<CLinkId>,
    /// Size of every data packet, bits.
    pub packet_bits: f64,
    /// Number of distinct packets to deliver.
    pub packets: u64,
    /// Time the sender starts, seconds.
    pub start_s: f64,
    /// Initial congestion window, packets.
    pub init_cwnd: f64,
    /// Upper bound on the congestion window, packets.
    pub max_cwnd: f64,
    /// Congestion-control algorithm.
    pub algorithm: CcAlgorithm,
    /// Fixed retransmission timeout, seconds. `None` derives
    /// `max(4 × base RTT, 10 ms)` from the route at add time.
    pub rto_s: Option<f64>,
    /// Initial smoothed-RTT estimate used for pacing before the first RTT
    /// sample. `None` derives the route's uncontended packet RTT.
    pub base_rtt_s: Option<f64>,
    /// Initial slow-start threshold, packets. `None` starts in slow start
    /// (`ssthresh = ∞`). A sender that already knows its path's
    /// bandwidth-delay product should set this to `init_cwnd`: starting a
    /// full window in slow start doubles straight past 2× the BDP inside
    /// one RTT, overflowing the bottleneck queue it was sized for.
    pub init_ssthresh: Option<f64>,
}

impl WindowedFlow {
    /// Creates a flow with default tuning (initial window 10 packets,
    /// unbounded maximum window, derived RTO and base RTT).
    pub fn new(
        route: Vec<CLinkId>,
        packet_bits: f64,
        packets: u64,
        start_s: f64,
        algorithm: CcAlgorithm,
    ) -> Self {
        Self {
            route,
            packet_bits,
            packets,
            start_s,
            init_cwnd: 10.0,
            max_cwnd: f64::MAX,
            algorithm,
            rto_s: None,
            base_rtt_s: None,
            init_ssthresh: None,
        }
    }
}

/// An open-loop constant-bit-rate cross-traffic flow (EO bulk downlink,
/// aggregated user traffic). Emits regardless of congestion; lost packets
/// are not retransmitted.
#[derive(Debug, Clone)]
pub struct CbrFlow {
    /// Links traversed in order.
    pub route: Vec<CLinkId>,
    /// Size of every packet, bits.
    pub packet_bits: f64,
    /// Inter-packet emission interval, seconds.
    pub interval_s: f64,
    /// Time of the first emission, seconds.
    pub start_s: f64,
    /// Total packets to emit.
    pub packets: u64,
}

impl CbrFlow {
    /// A CBR flow offering `load_bps` starting at `start_s` for
    /// `duration_s` seconds.
    pub fn with_load(
        route: Vec<CLinkId>,
        packet_bits: f64,
        load_bps: f64,
        start_s: f64,
        duration_s: f64,
    ) -> Self {
        assert!(
            load_bps.is_finite() && load_bps > 0.0,
            "CBR load must be positive and finite, got {load_bps}"
        );
        assert!(
            duration_s.is_finite() && duration_s > 0.0,
            "CBR duration must be positive and finite, got {duration_s}"
        );
        let interval_s = packet_bits / load_bps;
        let packets = (duration_s / interval_s).ceil().max(1.0) as u64;
        Self {
            route,
            packet_bits,
            interval_s,
            start_s,
            packets,
        }
    }
}

/// Outcome of a windowed flow, valid once the enclosing run has advanced
/// past the events that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowedStats {
    /// Packet transmissions, including retransmissions.
    pub transmissions: u64,
    /// Retransmissions only (second and later transmissions of a sequence).
    pub retransmissions: u64,
    /// Packet arrivals at the receiver, including duplicates.
    pub arrivals: u64,
    /// Distinct packets delivered.
    pub delivered: u64,
    /// Transmissions lost to full queues.
    pub dropped: u64,
    /// Arrivals carrying a congestion-experienced mark.
    pub ecn_marked: u64,
    /// Receiver-side completion time: when the last distinct packet
    /// arrived. `None` while the transfer is incomplete.
    pub completion_s: Option<f64>,
    /// Congestion window at observation time, packets.
    pub final_cwnd: f64,
    /// Smoothed RTT at observation time, seconds.
    pub srtt_s: f64,
}

/// Outcome of a CBR cross-traffic flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbrStats {
    /// Packets emitted so far.
    pub emitted: u64,
    /// Packets delivered to the receiver.
    pub delivered: u64,
    /// Packets lost to full queues.
    pub dropped: u64,
    /// Delivered packets carrying a congestion-experienced mark.
    pub ecn_marked: u64,
}

/// Analytic completion time of an uncontended *packetized* transfer: the
/// first packet store-and-forwards across every hop, and the remaining
/// `n − 1` packets pipeline behind the slowest hop.
///
/// This is the packet-level analogue of [`crate::des::uncontended_transfer_s`],
/// which times the transfer as one indivisible message. The two agree
/// exactly on single-hop routes; on multi-hop routes the packetized bound
/// is smaller because hops overlap (cut-through pipelining), which is what
/// a windowed sender actually achieves.
pub fn uncontended_packet_transfer_s(
    packet_bits: f64,
    packets: u64,
    links: &[CongestionLink],
) -> f64 {
    assert!(!links.is_empty(), "route must have at least one link");
    let first: f64 = links
        .iter()
        .map(|l| packet_bits / l.rate_bps + l.prop_delay_s)
        .sum();
    let bottleneck = links
        .iter()
        .map(|l| packet_bits / l.rate_bps)
        .fold(0.0_f64, f64::max);
    first + (packets.saturating_sub(1)) as f64 * bottleneck
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Win(usize),
    Cbr(usize),
}

#[derive(Debug, Clone, Copy)]
struct Pkt {
    src: Src,
    seq: u64,
    hop: usize,
    marked: bool,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A link finished serializing its in-service packet.
    TxDone { link: usize },
    /// An ACK reached the sender.
    Ack {
        flow: usize,
        seq: u64,
        cum: u64,
        marked: bool,
    },
    /// Retransmission timer for transmission number `txn` of `seq`.
    Timeout { flow: usize, seq: u64, txn: u32 },
    /// The pacer releases the sender's next packet.
    Pace { flow: usize },
    /// A CBR source emits packet `k`.
    Emit { cbr: usize, k: u64 },
    /// A packet arrives at a link's queue (inter-hop forwarding).
    Enqueue { link: usize, pkt: Pkt },
}

impl Ev {
    /// Tie-break rank for events at the same timestamp. Transmit
    /// completions free links before anything else looks at them (the same
    /// boundary pinned by `packet::tests::coincident_txdone_and_enqueue_frees_the_link_first`);
    /// ACKs update windows before pacers fire; enqueues observe final link
    /// state.
    fn rank(&self) -> u8 {
        match self {
            Ev::TxDone { .. } => 0,
            Ev::Ack { .. } => 1,
            Ev::Timeout { .. } => 2,
            Ev::Pace { .. } => 3,
            Ev::Emit { .. } => 4,
            Ev::Enqueue { .. } => 5,
        }
    }
}

#[derive(Debug)]
struct Event {
    time_s: f64,
    seq: u64,
    kind: Ev,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Reversed: BinaryHeap is a max-heap, we want earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time_s
            .total_cmp(&self.time_s)
            .then_with(|| other.kind.rank().cmp(&self.kind.rank()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct LinkState {
    cfg: CongestionLink,
    busy: Option<Pkt>,
    queue: VecDeque<Pkt>,
}

struct WinState {
    cfg: WindowedFlow,
    /// Pure-delay reverse path for ACKs: sum of forward propagation delays.
    ack_delay_s: f64,
    rto_s: f64,
    // --- sender ---
    cwnd: f64,
    ssthresh: f64,
    srtt_s: f64,
    snd_una: u64,
    next_seq: u64,
    inflight: u64,
    dup_acks: u32,
    in_recovery: bool,
    recover: u64,
    done: bool,
    pace_scheduled: bool,
    next_release_s: f64,
    rtx_queue: VecDeque<u64>,
    rtx_pending: Vec<bool>,
    sacked: Vec<bool>,
    outstanding: Vec<bool>,
    tx_count: Vec<u32>,
    sent_at: Vec<f64>,
    // DCTCP state.
    alpha: f64,
    window_end: u64,
    acks_in_window: u64,
    marked_in_window: u64,
    /// Last multiplicative decrease (loss or AIMD ECN cut).
    last_cut_s: f64,
    // --- receiver ---
    received: Vec<bool>,
    received_count: u64,
    rcv_cum: u64,
    // --- stats ---
    transmissions: u64,
    retransmissions: u64,
    arrivals: u64,
    dropped: u64,
    ecn_marked: u64,
    completion_s: Option<f64>,
}

impl WinState {
    fn window(&self) -> u64 {
        self.cwnd.floor().max(1.0) as u64
    }

    fn has_work(&self) -> bool {
        !self.rtx_queue.is_empty() || self.next_seq < self.cfg.packets
    }
}

struct CbrState {
    cfg: CbrFlow,
    emitted: u64,
    delivered: u64,
    dropped: u64,
    ecn_marked: u64,
}

/// The congestion-aware packet network: drop-tail ECN-marking links shared
/// by windowed senders and open-loop CBR cross-traffic.
#[derive(Default)]
pub struct CongestionNetwork {
    links: Vec<LinkState>,
    wins: Vec<WinState>,
    cbrs: Vec<CbrState>,
    heap: BinaryHeap<Event>,
    now_s: f64,
    event_seq: u64,
    incomplete_wins: usize,
}

impl CongestionNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a link.
    pub fn add_link(&mut self, link: CongestionLink) -> CLinkId {
        // Route CongestionLink construction through `new` so hand-built
        // structs get the same validation.
        let validated = CongestionLink::new(link.rate_bps, link.prop_delay_s, link.queue_packets);
        let validated = match link.ecn_threshold {
            Some(t) => validated.with_ecn(t),
            None => validated,
        };
        self.links.push(LinkState {
            cfg: validated,
            busy: None,
            queue: VecDeque::new(),
        });
        CLinkId(self.links.len() - 1)
    }

    fn validate_route(&self, route: &[CLinkId], packet_bits: f64, start_s: f64) {
        assert!(!route.is_empty(), "flow route must have at least one link");
        for l in route {
            assert!(l.0 < self.links.len(), "route names unknown link {}", l.0);
        }
        assert!(
            packet_bits.is_finite() && packet_bits > 0.0,
            "packet size must be positive and finite, got {packet_bits}"
        );
        assert!(
            start_s.is_finite() && start_s >= self.now_s,
            "flow start must be finite and not in the simulated past, got {start_s} at t={}",
            self.now_s
        );
    }

    /// Adds a windowed flow; it starts pacing at `start_s`.
    pub fn add_windowed(&mut self, flow: WindowedFlow) -> SenderId {
        self.validate_route(&flow.route, flow.packet_bits, flow.start_s);
        assert!(
            flow.packets > 0,
            "windowed flow must carry at least one packet"
        );
        assert!(
            flow.init_cwnd.is_finite() && flow.init_cwnd >= 1.0,
            "initial window must be at least one packet, got {}",
            flow.init_cwnd
        );
        assert!(
            flow.max_cwnd >= flow.init_cwnd,
            "maximum window {} below initial window {}",
            flow.max_cwnd,
            flow.init_cwnd
        );
        if let CcAlgorithm::Dctcp { gain } = flow.algorithm {
            assert!(
                gain.is_finite() && gain > 0.0 && gain <= 1.0,
                "DCTCP gain must be in (0, 1], got {gain}"
            );
        }
        let base_rtt_s = flow.base_rtt_s.unwrap_or_else(|| {
            flow.route
                .iter()
                .map(|l| {
                    let cfg = &self.links[l.0].cfg;
                    flow.packet_bits / cfg.rate_bps + 2.0 * cfg.prop_delay_s
                })
                .sum()
        });
        assert!(
            base_rtt_s.is_finite() && base_rtt_s > 0.0,
            "base RTT must be positive and finite, got {base_rtt_s}"
        );
        let rto_s = flow.rto_s.unwrap_or_else(|| (4.0 * base_rtt_s).max(0.01));
        assert!(
            rto_s.is_finite() && rto_s > 0.0,
            "retransmission timeout must be positive and finite, got {rto_s}"
        );
        let ssthresh = flow.init_ssthresh.unwrap_or(f64::MAX);
        assert!(
            !ssthresh.is_nan() && ssthresh >= 1.0,
            "initial ssthresh must be at least one packet, got {ssthresh}"
        );
        let n = flow.packets as usize;
        let ack_delay_s = flow
            .route
            .iter()
            .map(|l| self.links[l.0].cfg.prop_delay_s)
            .sum();
        let start_s = flow.start_s;
        let init_cwnd = flow.init_cwnd;
        let id = self.wins.len();
        self.wins.push(WinState {
            ack_delay_s,
            rto_s,
            cwnd: init_cwnd,
            ssthresh,
            srtt_s: base_rtt_s,
            snd_una: 0,
            next_seq: 0,
            inflight: 0,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            done: false,
            pace_scheduled: true,
            next_release_s: start_s,
            rtx_queue: VecDeque::new(),
            rtx_pending: vec![false; n],
            sacked: vec![false; n],
            outstanding: vec![false; n],
            tx_count: vec![0; n],
            sent_at: vec![0.0; n],
            alpha: 1.0,
            window_end: 0,
            acks_in_window: 0,
            marked_in_window: 0,
            last_cut_s: f64::NEG_INFINITY,
            received: vec![false; n],
            received_count: 0,
            rcv_cum: 0,
            transmissions: 0,
            retransmissions: 0,
            arrivals: 0,
            dropped: 0,
            ecn_marked: 0,
            completion_s: None,
            cfg: flow,
        });
        self.incomplete_wins += 1;
        self.schedule(start_s, Ev::Pace { flow: id });
        SenderId(id)
    }

    /// Adds an open-loop CBR cross-traffic flow.
    pub fn add_cbr(&mut self, flow: CbrFlow) -> CbrId {
        self.validate_route(&flow.route, flow.packet_bits, flow.start_s);
        assert!(flow.packets > 0, "CBR flow must emit at least one packet");
        assert!(
            flow.interval_s.is_finite() && flow.interval_s > 0.0,
            "CBR emission interval must be positive and finite, got {}",
            flow.interval_s
        );
        let id = self.cbrs.len();
        let start_s = flow.start_s;
        self.cbrs.push(CbrState {
            cfg: flow,
            emitted: 0,
            delivered: 0,
            dropped: 0,
            ecn_marked: 0,
        });
        self.schedule(start_s, Ev::Emit { cbr: id, k: 0 });
        CbrId(id)
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        self.run_until(f64::INFINITY);
    }

    /// Processes every event with timestamp `<= horizon_s`, then advances
    /// the clock to the horizon. Returns `true` if every windowed flow has
    /// completed.
    pub fn run_until(&mut self, horizon_s: f64) -> bool {
        assert!(!horizon_s.is_nan(), "horizon must not be NaN");
        self.drive(horizon_s, false)
    }

    /// Like [`run_until`](Self::run_until), but stops as soon as the last
    /// windowed flow completes, leaving cross-traffic events unprocessed.
    /// Use this to time transfers without paying for background traffic
    /// that outlives them.
    pub fn run_while_incomplete(&mut self, horizon_s: f64) -> bool {
        assert!(!horizon_s.is_nan(), "horizon must not be NaN");
        self.drive(horizon_s, true)
    }

    fn drive(&mut self, horizon_s: f64, stop_on_complete: bool) -> bool {
        loop {
            if stop_on_complete && self.incomplete_wins == 0 {
                return true;
            }
            let Some(ev) = self.heap.peek() else { break };
            if ev.time_s > horizon_s {
                break;
            }
            let ev = self.heap.pop().expect("peeked event");
            self.now_s = ev.time_s;
            match ev.kind {
                Ev::TxDone { link } => self.on_tx_done(link),
                Ev::Ack {
                    flow,
                    seq,
                    cum,
                    marked,
                } => self.on_ack(flow, seq, cum, marked),
                Ev::Timeout { flow, seq, txn } => self.on_timeout(flow, seq, txn),
                Ev::Pace { flow } => self.on_pace(flow),
                Ev::Emit { cbr, k } => self.on_emit(cbr, k),
                Ev::Enqueue { link, pkt } => self.enqueue(link, pkt),
            }
        }
        if horizon_s.is_finite() && horizon_s > self.now_s {
            self.now_s = horizon_s;
        }
        self.incomplete_wins == 0
    }

    /// Current simulated time.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// True once every windowed flow has delivered all its packets.
    pub fn all_complete(&self) -> bool {
        self.incomplete_wins == 0
    }

    /// Stats for a windowed flow at the current simulated time.
    pub fn windowed_stats(&self, id: SenderId) -> WindowedStats {
        let w = &self.wins[id.0];
        WindowedStats {
            transmissions: w.transmissions,
            retransmissions: w.retransmissions,
            arrivals: w.arrivals,
            delivered: w.received_count,
            dropped: w.dropped,
            ecn_marked: w.ecn_marked,
            completion_s: w.completion_s,
            final_cwnd: w.cwnd,
            srtt_s: w.srtt_s,
        }
    }

    /// Stats for a CBR flow at the current simulated time.
    pub fn cbr_stats(&self, id: CbrId) -> CbrStats {
        let c = &self.cbrs[id.0];
        CbrStats {
            emitted: c.emitted,
            delivered: c.delivered,
            dropped: c.dropped,
            ecn_marked: c.ecn_marked,
        }
    }

    fn schedule(&mut self, time_s: f64, kind: Ev) {
        debug_assert!(time_s.is_finite());
        let seq = self.event_seq;
        self.event_seq += 1;
        self.heap.push(Event { time_s, seq, kind });
    }

    fn packet_bits(&self, src: Src) -> f64 {
        match src {
            Src::Win(i) => self.wins[i].cfg.packet_bits,
            Src::Cbr(i) => self.cbrs[i].cfg.packet_bits,
        }
    }

    fn route_len(&self, src: Src) -> usize {
        match src {
            Src::Win(i) => self.wins[i].cfg.route.len(),
            Src::Cbr(i) => self.cbrs[i].cfg.route.len(),
        }
    }

    fn enqueue(&mut self, link: usize, mut pkt: Pkt) {
        let now = self.now_s;
        let bits = self.packet_bits(pkt.src);
        let l = &mut self.links[link];
        if l.busy.is_none() {
            l.busy = Some(pkt);
            let tx = bits / l.cfg.rate_bps;
            self.schedule(now + tx, Ev::TxDone { link });
        } else if l.queue.len() < l.cfg.queue_packets {
            if let Some(th) = l.cfg.ecn_threshold {
                if l.queue.len() >= th {
                    pkt.marked = true;
                }
            }
            l.queue.push_back(pkt);
        } else {
            match pkt.src {
                Src::Win(i) => self.wins[i].dropped += 1,
                Src::Cbr(i) => self.cbrs[i].dropped += 1,
            }
        }
    }

    fn on_tx_done(&mut self, link: usize) {
        let l = &mut self.links[link];
        let pkt = l.busy.take().expect("TxDone on idle link");
        let prop = l.cfg.prop_delay_s;
        if let Some(next) = l.queue.pop_front() {
            let bits = self.packet_bits(next.src);
            let l = &mut self.links[link];
            l.busy = Some(next);
            let tx = bits / l.cfg.rate_bps;
            let now = self.now_s;
            self.schedule(now + tx, Ev::TxDone { link });
        }
        let arrival = self.now_s + prop;
        if pkt.hop + 1 < self.route_len(pkt.src) {
            let next_link = match pkt.src {
                Src::Win(i) => self.wins[i].cfg.route[pkt.hop + 1].0,
                Src::Cbr(i) => self.cbrs[i].cfg.route[pkt.hop + 1].0,
            };
            self.schedule(
                arrival,
                Ev::Enqueue {
                    link: next_link,
                    pkt: Pkt {
                        hop: pkt.hop + 1,
                        ..pkt
                    },
                },
            );
        } else {
            self.deliver(pkt, arrival);
        }
    }

    /// Receiver-side delivery. Processed while handling the final hop's
    /// `TxDone`, with the arrival timestamp carried explicitly; this is
    /// safe because receiver state is only ever read here and the ACK it
    /// produces is scheduled at `arrival + ack_delay >= arrival`.
    fn deliver(&mut self, pkt: Pkt, arrival_s: f64) {
        match pkt.src {
            Src::Cbr(i) => {
                let c = &mut self.cbrs[i];
                c.delivered += 1;
                if pkt.marked {
                    c.ecn_marked += 1;
                }
            }
            Src::Win(i) => {
                let w = &mut self.wins[i];
                w.arrivals += 1;
                if pkt.marked {
                    w.ecn_marked += 1;
                }
                let seq = pkt.seq as usize;
                if !w.received[seq] {
                    w.received[seq] = true;
                    w.received_count += 1;
                    while w.rcv_cum < w.cfg.packets && w.received[w.rcv_cum as usize] {
                        w.rcv_cum += 1;
                    }
                    if w.received_count == w.cfg.packets {
                        w.completion_s = Some(arrival_s);
                        self.incomplete_wins -= 1;
                    }
                }
                let cum = self.wins[i].rcv_cum;
                let ack_delay = self.wins[i].ack_delay_s;
                self.schedule(
                    arrival_s + ack_delay,
                    Ev::Ack {
                        flow: i,
                        seq: pkt.seq,
                        cum,
                        marked: pkt.marked,
                    },
                );
            }
        }
    }

    fn on_ack(&mut self, flow: usize, seq: u64, cum: u64, marked: bool) {
        let now = self.now_s;
        let w = &mut self.wins[flow];
        if w.done {
            return;
        }
        let s = seq as usize;
        // Selective bookkeeping: the ACK names the exact packet that
        // arrived, so its transmission is no longer in flight.
        if !w.sacked[s] {
            w.sacked[s] = true;
            if w.outstanding[s] {
                w.outstanding[s] = false;
                w.inflight = w.inflight.saturating_sub(1);
            }
            // Karn's rule: only never-retransmitted packets give RTT samples.
            if w.tx_count[s] == 1 {
                let sample = now - w.sent_at[s];
                w.srtt_s = 0.875 * w.srtt_s + 0.125 * sample;
            }
        }
        w.acks_in_window += 1;
        if marked {
            w.marked_in_window += 1;
        }
        let old_una = w.snd_una;
        if cum > old_una {
            for q in old_una..cum {
                let q = q as usize;
                if w.outstanding[q] {
                    w.outstanding[q] = false;
                    w.inflight = w.inflight.saturating_sub(1);
                }
                w.sacked[q] = true;
            }
            w.snd_una = cum;
            w.dup_acks = 0;
            if w.in_recovery && cum >= w.recover {
                w.in_recovery = false;
            }
            if !w.in_recovery {
                let n = (cum - old_una) as f64;
                if w.cwnd < w.ssthresh {
                    w.cwnd = (w.cwnd + n).min(w.cfg.max_cwnd);
                } else {
                    w.cwnd = (w.cwnd + n / w.cwnd).min(w.cfg.max_cwnd);
                }
            }
        } else {
            w.dup_acks += 1;
            if w.dup_acks == 3 && !w.in_recovery {
                // Fast retransmit of the first missing packet.
                w.in_recovery = true;
                w.recover = w.next_seq;
                w.ssthresh = (w.cwnd / 2.0).max(2.0);
                w.cwnd = w.ssthresh;
                w.last_cut_s = now;
                let missing = w.snd_una as usize;
                if !w.sacked[missing] {
                    if w.outstanding[missing] {
                        w.outstanding[missing] = false;
                        w.inflight = w.inflight.saturating_sub(1);
                    }
                    if !w.rtx_pending[missing] {
                        w.rtx_pending[missing] = true;
                        w.rtx_queue.push_back(w.snd_una);
                    }
                }
            }
        }
        // ECN response.
        match w.cfg.algorithm {
            CcAlgorithm::Aimd => {
                if marked && now - w.last_cut_s >= w.srtt_s {
                    w.ssthresh = (w.cwnd / 2.0).max(2.0);
                    w.cwnd = w.ssthresh;
                    w.last_cut_s = now;
                }
            }
            CcAlgorithm::Dctcp { gain } => {
                if w.snd_una >= w.window_end {
                    let frac = if w.acks_in_window == 0 {
                        0.0
                    } else {
                        w.marked_in_window as f64 / w.acks_in_window as f64
                    };
                    w.alpha = (1.0 - gain) * w.alpha + gain * frac;
                    if w.marked_in_window > 0 {
                        w.cwnd = (w.cwnd * (1.0 - w.alpha / 2.0)).max(1.0);
                        w.ssthresh = w.cwnd;
                        w.last_cut_s = now;
                    }
                    w.acks_in_window = 0;
                    w.marked_in_window = 0;
                    w.window_end = w.next_seq.max(w.snd_una + 1);
                }
            }
        }
        if w.snd_una >= w.cfg.packets {
            w.done = true;
            w.rtx_queue.clear();
            return;
        }
        self.arm_pacer(flow);
    }

    fn on_timeout(&mut self, flow: usize, seq: u64, txn: u32) {
        let w = &mut self.wins[flow];
        let s = seq as usize;
        if w.done || seq < w.snd_una || w.sacked[s] || w.tx_count[s] != txn {
            return; // Stale timer: the packet has since been acknowledged
                    // or retransmitted.
        }
        if w.outstanding[s] {
            w.outstanding[s] = false;
            w.inflight = w.inflight.saturating_sub(1);
        }
        if !w.rtx_pending[s] {
            w.rtx_pending[s] = true;
            w.rtx_queue.push_back(seq);
        }
        // RTO: collapse to one packet and slow-start again.
        w.ssthresh = (w.cwnd / 2.0).max(2.0);
        w.cwnd = 1.0;
        w.in_recovery = false;
        w.dup_acks = 0;
        w.last_cut_s = self.now_s;
        self.arm_pacer(flow);
    }

    fn arm_pacer(&mut self, flow: usize) {
        let w = &mut self.wins[flow];
        if w.pace_scheduled || w.done || !w.has_work() || w.inflight >= w.window() {
            return;
        }
        w.pace_scheduled = true;
        let at = w.next_release_s.max(self.now_s);
        self.schedule(at, Ev::Pace { flow });
    }

    fn on_pace(&mut self, flow: usize) {
        let now = self.now_s;
        let w = &mut self.wins[flow];
        w.pace_scheduled = false;
        if w.done || w.inflight >= w.window() {
            return; // An ACK will re-arm the pacer when the window opens.
        }
        // Pick the next sequence: retransmissions first.
        let seq = loop {
            match w.rtx_queue.pop_front() {
                Some(q) => {
                    w.rtx_pending[q as usize] = false;
                    if !w.sacked[q as usize] && q >= w.snd_una {
                        break Some(q);
                    }
                }
                None => {
                    if w.next_seq < w.cfg.packets {
                        let q = w.next_seq;
                        w.next_seq += 1;
                        break Some(q);
                    }
                    break None;
                }
            }
        };
        let Some(seq) = seq else { return };
        let s = seq as usize;
        w.tx_count[s] += 1;
        w.sent_at[s] = now;
        w.outstanding[s] = true;
        w.inflight += 1;
        w.transmissions += 1;
        if w.tx_count[s] > 1 {
            w.retransmissions += 1;
        }
        let txn = w.tx_count[s];
        let first_link = w.cfg.route[0].0;
        let rto = w.rto_s;
        // Pace at cwnd per srtt.
        let interval = w.srtt_s.max(1e-9) / w.cwnd.max(1.0);
        w.next_release_s = now + interval;
        let pkt = Pkt {
            src: Src::Win(flow),
            seq,
            hop: 0,
            marked: false,
        };
        self.enqueue(first_link, pkt);
        self.schedule(now + rto, Ev::Timeout { flow, seq, txn });
        self.arm_pacer(flow);
    }

    fn on_emit(&mut self, cbr: usize, k: u64) {
        let now = self.now_s;
        let c = &mut self.cbrs[cbr];
        c.emitted += 1;
        let first_link = c.cfg.route[0].0;
        let interval = c.cfg.interval_s;
        let more = k + 1 < c.cfg.packets;
        let pkt = Pkt {
            src: Src::Cbr(cbr),
            seq: k,
            hop: 0,
            marked: false,
        };
        self.enqueue(first_link, pkt);
        if more {
            self.schedule(now + interval, Ev::Emit { cbr, k: k + 1 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn one_link_net(rate_bps: f64, prop_s: f64, queue: usize) -> (CongestionNetwork, CLinkId) {
        let mut net = CongestionNetwork::new();
        let l = net.add_link(CongestionLink::new(rate_bps, prop_s, queue));
        (net, l)
    }

    #[test]
    fn uncontended_transfer_matches_packet_analytic_bound() {
        // 100 Mbit/s, 5 ms prop, plenty of queue; 500 × 10 kbit packets.
        let (mut net, l) = one_link_net(100e6, 5e-3, 256);
        let mut f = WindowedFlow::new(vec![l], 10e3, 500, 0.0, CcAlgorithm::Aimd);
        // Window at the path BDP so pacing runs at line rate immediately.
        f.init_cwnd = 128.0;
        let id = net.add_windowed(f);
        net.run();
        let stats = net.windowed_stats(id);
        assert_eq!(stats.delivered, 500);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.retransmissions, 0);
        let bound =
            uncontended_packet_transfer_s(10e3, 500, &[CongestionLink::new(100e6, 5e-3, 256)]);
        let t = stats.completion_s.expect("transfer completed");
        assert!(
            t >= bound - 1e-9 && t <= bound * 1.05,
            "uncontended completion {t} vs analytic bound {bound}"
        );
    }

    #[test]
    fn single_hop_packet_bound_equals_message_bound_minus_pipelining() {
        // On one hop the packetized bound equals the message-level bound:
        // serialization of all bits plus one propagation delay.
        let links = [CongestionLink::new(50e6, 2e-3, 64)];
        let packets = 400_u64;
        let pkt_bits = 8e3;
        let packetized = uncontended_packet_transfer_s(pkt_bits, packets, &links);
        let message = crate::des::uncontended_transfer_s(
            pkt_bits * packets as f64,
            &[crate::des::Link::new(50e6, 2e-3)],
        );
        assert!((packetized - message).abs() < 1e-9);
    }

    #[test]
    fn multi_hop_packet_bound_beats_message_bound() {
        let links = [
            CongestionLink::new(50e6, 2e-3, 64),
            CongestionLink::new(50e6, 3e-3, 64),
            CongestionLink::new(50e6, 1e-3, 64),
        ];
        let des_links: Vec<_> = links
            .iter()
            .map(|l| crate::des::Link::new(l.rate_bps, l.prop_delay_s))
            .collect();
        let packetized = uncontended_packet_transfer_s(8e3, 400, &links);
        let message = crate::des::uncontended_transfer_s(8e3 * 400.0, &des_links);
        assert!(
            packetized < message,
            "pipelining should beat store-and-forward: {packetized} vs {message}"
        );
    }

    #[test]
    fn slow_start_doubles_the_window_each_round_trip() {
        // Long-propagation link: the first window drains long before ACKs
        // return, so growth is driven purely by slow start.
        let (mut net, l) = one_link_net(1e9, 50e-3, 4096);
        let mut f = WindowedFlow::new(vec![l], 10e3, 4000, 0.0, CcAlgorithm::Aimd);
        f.init_cwnd = 2.0;
        let id = net.add_windowed(f);
        // After ~2 RTTs (ack of the first window arrives at ~100 ms + eps),
        // the window should have grown well past the initial 2.
        net.run_until(0.35);
        let stats = net.windowed_stats(id);
        assert!(
            stats.final_cwnd >= 8.0,
            "window should compound in slow start, got {}",
            stats.final_cwnd
        );
        net.run();
        assert_eq!(net.windowed_stats(id).delivered, 4000);
    }

    #[test]
    fn drop_tail_loss_triggers_retransmission_and_window_cut() {
        // Tiny queue + heavy CBR cross-traffic: the windowed flow must see
        // drops, recover all packets, and end with a reduced window.
        let (mut net, l) = one_link_net(10e6, 2e-3, 4);
        let cross = CbrFlow::with_load(vec![l], 10e3, 9e6, 0.0, 10.0);
        net.add_cbr(cross);
        let mut f = WindowedFlow::new(vec![l], 10e3, 300, 0.0, CcAlgorithm::Aimd);
        f.init_cwnd = 64.0;
        let id = net.add_windowed(f);
        net.run_while_incomplete(60.0);
        let stats = net.windowed_stats(id);
        assert_eq!(stats.delivered, 300, "all packets eventually delivered");
        assert!(stats.dropped > 0, "expected drop-tail losses");
        assert!(
            stats.retransmissions >= stats.dropped.min(1),
            "losses must be repaired by retransmission"
        );
        assert!(
            stats.final_cwnd < 64.0,
            "window should have been cut from its initial value, got {}",
            stats.final_cwnd
        );
    }

    #[test]
    fn ecn_marks_arrive_and_dctcp_keeps_losses_low() {
        // ECN threshold well below the queue limit: DCTCP should see marks
        // and back off before overflowing the queue.
        let mut net = CongestionNetwork::new();
        let l = net.add_link(CongestionLink::new(10e6, 2e-3, 64).with_ecn(8));
        let cross = CbrFlow::with_load(vec![l], 10e3, 4e6, 0.0, 30.0);
        net.add_cbr(cross);
        let mut f = WindowedFlow::new(vec![l], 10e3, 500, 0.0, CcAlgorithm::Dctcp { gain: 0.0625 });
        f.init_cwnd = 16.0;
        let id = net.add_windowed(f);
        net.run_while_incomplete(120.0);
        let stats = net.windowed_stats(id);
        assert_eq!(stats.delivered, 500);
        assert!(stats.ecn_marked > 0, "expected ECN marks under load");
    }

    #[test]
    fn contended_transfer_is_slower_than_uncontended() {
        let run = |load_bps: Option<f64>| {
            let (mut net, l) = one_link_net(20e6, 3e-3, 32);
            if let Some(bps) = load_bps {
                net.add_cbr(CbrFlow::with_load(vec![l], 10e3, bps, 0.0, 60.0));
            }
            let mut f = WindowedFlow::new(vec![l], 10e3, 400, 0.0, CcAlgorithm::Aimd);
            f.init_cwnd = 16.0;
            let id = net.add_windowed(f);
            net.run_while_incomplete(120.0);
            net.windowed_stats(id).completion_s.expect("completed")
        };
        let clear = run(None);
        let loaded = run(Some(15e6));
        assert!(
            loaded > clear * 1.5,
            "cross-traffic should slow the transfer: {loaded} vs {clear}"
        );
    }

    #[test]
    fn engine_is_deterministic_across_runs() {
        let run = || {
            let mut net = CongestionNetwork::new();
            let a = net.add_link(CongestionLink::new(10e6, 2e-3, 8).with_ecn(4));
            let b = net.add_link(CongestionLink::new(5e6, 4e-3, 8));
            net.add_cbr(CbrFlow::with_load(vec![a, b], 8e3, 3e6, 0.0, 20.0));
            net.add_cbr(CbrFlow::with_load(vec![b], 8e3, 1e6, 0.5, 20.0));
            let f = WindowedFlow::new(
                vec![a, b],
                8e3,
                250,
                0.1,
                CcAlgorithm::Dctcp { gain: 0.0625 },
            );
            let id = net.add_windowed(f);
            net.run();
            net.windowed_stats(id)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn completion_is_receiver_side_even_when_acks_lag() {
        // Completion is the arrival of the last distinct packet, not the
        // return of its ACK: with a huge propagation delay the difference
        // is visible.
        let (mut net, l) = one_link_net(1e6, 0.2, 64);
        let mut f = WindowedFlow::new(vec![l], 1e3, 5, 0.0, CcAlgorithm::Aimd);
        f.init_cwnd = 8.0;
        let id = net.add_windowed(f);
        net.run();
        let t = net.windowed_stats(id).completion_s.unwrap();
        // The pacer releases the 5 packets over 4 × (401 ms / 8) ≈ 200 ms,
        // so the last arrival is ≈ 402 ms — but its ACK only returns at
        // ≈ 602 ms. Completion must record the arrival, not the ACK.
        assert!(t < 0.5, "completion should not wait for ACKs, got {t}");
    }

    #[test]
    #[should_panic(expected = "route names unknown link")]
    fn unknown_links_are_rejected() {
        let mut net = CongestionNetwork::new();
        net.add_windowed(WindowedFlow::new(
            vec![CLinkId(7)],
            1e3,
            1,
            0.0,
            CcAlgorithm::Aimd,
        ));
    }

    #[test]
    #[should_panic(expected = "packet size must be positive and finite")]
    fn non_finite_packet_sizes_are_rejected() {
        let (mut net, l) = one_link_net(1e6, 1e-3, 8);
        net.add_windowed(WindowedFlow::new(
            vec![l],
            f64::INFINITY,
            1,
            0.0,
            CcAlgorithm::Aimd,
        ));
    }

    #[test]
    #[should_panic(expected = "flow start must be finite")]
    fn nan_start_times_are_rejected() {
        let (mut net, l) = one_link_net(1e6, 1e-3, 8);
        net.add_windowed(WindowedFlow::new(
            vec![l],
            1e3,
            1,
            f64::NAN,
            CcAlgorithm::Aimd,
        ));
    }

    #[test]
    #[should_panic(expected = "ECN threshold")]
    fn ecn_threshold_above_queue_capacity_is_rejected() {
        CongestionLink::new(1e6, 1e-3, 8).with_ecn(9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Retransmission conservation for the congestion sender: after a
        /// full run every transmission is either delivered to the receiver
        /// or dropped at a queue, every distinct packet is delivered
        /// exactly once, and transmissions split exactly into first
        /// transmissions plus retransmissions.
        #[test]
        fn prop_retransmission_conservation(
            rate_mbps in 1.0_f64..50.0,
            queue in 2_usize..24,
            ecn_raw in 0_usize..32,
            cross_frac in 0.0_f64..1.4,
            packets in 20_u64..300,
            dctcp_raw in 0_u8..2,
        ) {
            let rate = rate_mbps * 1e6;
            let dctcp = dctcp_raw == 1;
            let mut net = CongestionNetwork::new();
            // Upper half of the raw range disables marking.
            let ecn = if ecn_raw < 16 { Some(ecn_raw) } else { None };
            let ecn = ecn.filter(|t| *t <= queue);
            let mut link = CongestionLink::new(rate, 1e-3, queue);
            if let Some(t) = ecn {
                link = link.with_ecn(t);
            }
            let l = net.add_link(link);
            if cross_frac > 0.05 {
                net.add_cbr(CbrFlow::with_load(vec![l], 8e3, cross_frac * rate, 0.0, 240.0));
            }
            let algo = if dctcp {
                CcAlgorithm::Dctcp { gain: 0.0625 }
            } else {
                CcAlgorithm::Aimd
            };
            let mut f = WindowedFlow::new(vec![l], 8e3, packets, 0.0, algo);
            f.init_cwnd = 10.0;
            let id = net.add_windowed(f);
            // Full drain: every in-flight packet resolves to an arrival or
            // a drop, so the conservation identity is exact.
            net.run();
            let s = net.windowed_stats(id);
            prop_assert_eq!(s.delivered, packets, "all distinct packets delivered");
            prop_assert!(s.completion_s.is_some());
            prop_assert_eq!(
                s.transmissions, s.arrivals + s.dropped,
                "each transmission must end delivered or dropped"
            );
            prop_assert_eq!(
                s.transmissions, packets + s.retransmissions,
                "transmissions = first transmissions + retransmissions"
            );
            prop_assert!(s.arrivals >= s.delivered);
        }

        /// Multi-hop: conservation holds per-hop with an interior
        /// bottleneck, and CBR cross-traffic accounting is exact.
        #[test]
        fn prop_multi_hop_retransmission_conservation(
            q_mid in 1_usize..8,
            cross_frac in 0.0_f64..1.2,
            packets in 20_u64..160,
        ) {
            let mut net = CongestionNetwork::new();
            let entry = net.add_link(CongestionLink::new(20e6, 1e-3, 64));
            let mid = net.add_link(CongestionLink::new(4e6, 2e-3, q_mid));
            let exit = net.add_link(CongestionLink::new(20e6, 1e-3, 64));
            let cross = if cross_frac > 0.05 {
                Some(net.add_cbr(CbrFlow::with_load(
                    vec![mid], 8e3, cross_frac * 4e6, 0.0, 600.0,
                )))
            } else {
                None
            };
            let f = WindowedFlow::new(
                vec![entry, mid, exit], 8e3, packets, 0.0, CcAlgorithm::Aimd,
            );
            let id = net.add_windowed(f);
            net.run();
            let s = net.windowed_stats(id);
            prop_assert_eq!(s.delivered, packets);
            prop_assert_eq!(s.transmissions, s.arrivals + s.dropped);
            prop_assert_eq!(s.transmissions, packets + s.retransmissions);
            if let Some(c) = cross {
                let cs = net.cbr_stats(c);
                prop_assert_eq!(cs.emitted, cs.delivered + cs.dropped);
            }
        }
    }
}
