//! Delta refresh must be indistinguishable from a full refresh — not
//! "close", bit-identical. `refresh_delta` skips an edge only when both
//! endpoint position bit patterns and the edge's mask status are exactly
//! what the previous refresh recorded, and recomputed edges reuse the
//! full path's expressions verbatim; these properties pin that down
//! across random snapshot pairs, fault plans, and chained transitions,
//! including the downstream Dijkstra results and the batched
//! multi-source query the serving layer leans on.

use leo_constellation::{Constellation, SatId, ShellSpec, WalkerPattern};
use leo_geo::{Angle, Geodetic};
use leo_net::engine::{DijkstraArena, RoutingEngine};
use leo_net::routing::GroundEndpoint;
use leo_net::{FaultPlan, IslTopology, IslWeights};
use proptest::prelude::*;

fn small_constellation() -> Constellation {
    Constellation::from_shells(
        "delta-prop",
        vec![ShellSpec {
            name: "shell".into(),
            altitude_m: 550e3,
            inclination: Angle::from_degrees(53.0),
            num_planes: 10,
            sats_per_plane: 10,
            phase_factor: 1,
            pattern: WalkerPattern::Delta,
            min_elevation: Angle::from_degrees(25.0),
        }],
    )
}

fn compiled() -> (Constellation, RoutingEngine) {
    let c = small_constellation();
    let topo = IslTopology::plus_grid(&c);
    let engine = RoutingEngine::compile(&c, &topo);
    (c, engine)
}

/// A fault plan from arbitrary dead-satellite and cut-link picks.
fn plan_from(dead: &[u8], cuts: &[(u8, u8)], engine: &RoutingEngine) -> FaultPlan {
    let n = engine.num_sats() as u32;
    let mut plan = FaultPlan::empty();
    for &d in dead {
        plan.kill(SatId(u32::from(d) % n));
    }
    for &(a, b) in cuts {
        let (a, b) = (u32::from(a) % n, u32::from(b) % n);
        if a != b {
            plan.cut_link(SatId(a), SatId(b));
        }
    }
    plan
}

fn assert_bits_eq(delta: &IslWeights, full: &IslWeights, ctx: &str) {
    assert!(
        delta.bits_eq(full),
        "{ctx}: delta diverged from full refresh"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Unmasked delta across a random snapshot pair lands bit-for-bit on
    /// the full refresh, whatever the time step (including zero).
    #[test]
    fn delta_equals_full_across_snapshot_pairs(
        t0 in 0.0f64..5400.0,
        dt in (0u8..4, 1e-3f64..600.0).prop_map(|(z, v)| if z == 0 { 0.0 } else { v }),
    ) {
        let (c, engine) = compiled();
        let mut w = engine.refresh(&c.snapshot(t0));
        let stats = engine.refresh_delta(&c.snapshot(t0 + dt), &mut w);
        prop_assert!(!stats.full_rebuild);
        assert_bits_eq(&w, &engine.refresh(&c.snapshot(t0 + dt)), "unmasked pair");
        if dt == 0.0 {
            prop_assert_eq!(stats.recomputed, 0);
        }
    }

    /// Masked delta across random snapshot pairs and random fault-plan
    /// transitions (plan appears, changes, or disappears) matches the
    /// full masked refresh bitwise at every step.
    #[test]
    fn masked_delta_equals_full_across_plan_transitions(
        t0 in 0.0f64..5400.0,
        dt in 0.0f64..600.0,
        dead0 in proptest::collection::vec(0u8..255, 0..4),
        dead1 in proptest::collection::vec(0u8..255, 0..4),
        cuts in proptest::collection::vec((0u8..255, 0u8..255), 0..4),
    ) {
        let (c, engine) = compiled();
        let plan0 = plan_from(&dead0, &[], &engine);
        let plan1 = plan_from(&dead1, &cuts, &engine);
        let mut w = IslWeights::default();
        engine.refresh_into_masked(&c.snapshot(t0), &plan0, &mut w);
        // Transition 1: new instant, new plan.
        engine.refresh_delta_masked(&c.snapshot(t0 + dt), &plan1, &mut w);
        let mut full = IslWeights::default();
        engine.refresh_into_masked(&c.snapshot(t0 + dt), &plan1, &mut full);
        assert_bits_eq(&w, &full, "plan transition");
        // Transition 2: same instant, plan lifted entirely.
        engine.refresh_delta(&c.snapshot(t0 + dt), &mut w);
        assert_bits_eq(&w, &engine.refresh(&c.snapshot(t0 + dt)), "plan lifted");
    }

    /// A chain of deltas tracks a chain of full refreshes bitwise — no
    /// drift accumulates step over step.
    #[test]
    fn chained_deltas_never_drift(
        t0 in 0.0f64..5400.0,
        steps in proptest::collection::vec(0.0f64..240.0, 1..6),
    ) {
        let (c, engine) = compiled();
        let mut w = engine.refresh(&c.snapshot(t0));
        let mut t = t0;
        for (i, dt) in steps.iter().enumerate() {
            t += dt;
            engine.refresh_delta(&c.snapshot(t), &mut w);
            assert_bits_eq(&w, &engine.refresh(&c.snapshot(t)), &format!("step {i}"));
        }
    }

    /// Downstream of the weights, per-ground Dijkstra rows computed over
    /// delta-refreshed weights equal the full-refresh rows bitwise —
    /// under a fault plan too.
    #[test]
    fn downstream_delays_are_identical(
        t0 in 0.0f64..5400.0,
        dt in 0.0f64..600.0,
        dead in proptest::collection::vec(0u8..255, 0..3),
        lat in -60.0f64..60.0,
        lon in -180.0f64..180.0,
    ) {
        let (c, engine) = compiled();
        let plan = plan_from(&dead, &[], &engine);
        let mut w = IslWeights::default();
        engine.refresh_into_masked(&c.snapshot(t0), &plan, &mut w);
        let snap = c.snapshot(t0 + dt);
        engine.refresh_delta_masked(&snap, &plan, &mut w);
        let mut full = IslWeights::default();
        engine.refresh_into_masked(&snap, &plan, &mut full);
        let grounds = [GroundEndpoint::new(0, Geodetic::ground(lat, lon))];
        let links = engine.attach_scan_masked(&c, &snap, &grounds, &plan);
        let mut arena = DijkstraArena::new();
        let mut via_delta = Vec::new();
        let mut via_full = Vec::new();
        engine.delays_from_ground_into(&w, &links, 0, &mut via_delta, &mut arena);
        engine.delays_from_ground_into(&full, &links, 0, &mut via_full, &mut arena);
        for (s, (a, b)) in via_delta.iter().zip(&via_full).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "sat {}", s);
        }
    }

    /// The batched multi-source query decomposes: sharing one settled
    /// frontier across a random source group equals the elementwise
    /// minimum of the per-source runs, bit for bit.
    #[test]
    fn multi_source_decomposes_into_single_sources(
        t in 0.0f64..5400.0,
        picks in proptest::collection::vec(0u8..255, 1..8),
        lats in proptest::collection::vec(-60.0f64..60.0, 1..4),
    ) {
        let (c, engine) = compiled();
        let snap = c.snapshot(t);
        let weights = engine.refresh(&snap);
        let grounds: Vec<GroundEndpoint> = lats
            .iter()
            .enumerate()
            .map(|(i, &lat)| {
                GroundEndpoint::new(i as u32, Geodetic::ground(lat, 31.0 * i as f64))
            })
            .collect();
        let links = engine.attach_scan(&c, &snap, &grounds);
        let n = engine.num_sats() as u32;
        let sources: Vec<SatId> = picks.iter().map(|&p| SatId(u32::from(p) % n)).collect();
        let mut arena = DijkstraArena::new();
        let mut batched = Vec::new();
        engine.multi_source_ground_delays_into(&weights, &links, &sources, &mut batched, &mut arena);
        let mut row = Vec::new();
        for g in 0..grounds.len() {
            let mut best = f64::INFINITY;
            for &s in &sources {
                engine.multi_source_ground_delays_into(
                    &weights,
                    &links,
                    std::slice::from_ref(&s),
                    &mut row,
                    &mut arena,
                );
                best = best.min(row[g]);
            }
            prop_assert_eq!(batched[g].to_bits(), best.to_bits(), "ground {}", g);
        }
    }
}
