//! A whole constellation: identity, propagators, and position snapshots.

use crate::shell::ShellSpec;
use leo_geo::coords::{Ecef, Eci};
use leo_geo::{Angle, Epoch, Geodetic};
use leo_orbit::propagate::ForceModel;
use leo_orbit::{Propagator, Tle};
use serde::{Deserialize, Serialize};

/// Stable identifier of a satellite within one [`Constellation`]: its index
/// in the flat satellite array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SatId(pub u32);

impl std::fmt::Display for SatId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sat{}", self.0)
    }
}

/// One satellite: its identity within the Walker structure plus its
/// propagator.
#[derive(Debug, Clone)]
pub struct Satellite {
    /// Flat identifier.
    pub id: SatId,
    /// Index of the shell this satellite belongs to.
    pub shell: u32,
    /// Orbital plane within the shell.
    pub plane: u32,
    /// Slot within the plane.
    pub slot: u32,
    /// The satellite's propagator.
    pub propagator: Propagator,
}

/// All satellite positions at one instant, in ECEF, indexed by [`SatId`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Simulation time of the snapshot, seconds after the epoch.
    pub time_s: f64,
    /// ECEF position of each satellite, indexed by `SatId.0`.
    pub positions: Vec<Ecef>,
}

impl Snapshot {
    /// Position of one satellite.
    pub fn position(&self, id: SatId) -> Ecef {
        self.positions[id.0 as usize]
    }

    /// Number of satellites in the snapshot.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the snapshot holds no satellites.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Iterates over `(SatId, Ecef)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SatId, Ecef)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (SatId(i as u32), p))
    }
}

/// A generated constellation with per-shell structure preserved.
#[derive(Debug, Clone)]
pub struct Constellation {
    name: String,
    epoch: Epoch,
    shells: Vec<ShellSpec>,
    satellites: Vec<Satellite>,
    /// First flat index of each shell (length = shells + 1; last entry is
    /// the total satellite count), for O(1) shell lookup.
    shell_offsets: Vec<u32>,
}

impl Constellation {
    /// Generates a constellation from shell specifications at the default
    /// epoch ([`Epoch::J2000`]) with the J2 force model.
    ///
    /// # Panics
    /// Panics when a shell fails validation — presets are validated by
    /// construction; custom shells should be checked with
    /// [`ShellSpec::validate`] first.
    pub fn from_shells(name: &str, shells: Vec<ShellSpec>) -> Self {
        Self::from_shells_at(name, shells, Epoch::J2000, ForceModel::TwoBodyJ2)
    }

    /// Generates a constellation at a specific epoch and force model.
    pub fn from_shells_at(
        name: &str,
        shells: Vec<ShellSpec>,
        epoch: Epoch,
        model: ForceModel,
    ) -> Self {
        let mut satellites = Vec::new();
        let mut shell_offsets = Vec::with_capacity(shells.len() + 1);
        for (shell_idx, spec) in shells.iter().enumerate() {
            spec.validate()
                .unwrap_or_else(|e| panic!("shell {}: {e}", spec.name));
            shell_offsets.push(satellites.len() as u32);
            for (plane, slot) in spec.positions() {
                let id = SatId(satellites.len() as u32);
                satellites.push(Satellite {
                    id,
                    shell: shell_idx as u32,
                    plane,
                    slot,
                    propagator: Propagator::with_force_model(
                        spec.elements(plane, slot),
                        epoch,
                        model,
                    ),
                });
            }
        }
        shell_offsets.push(satellites.len() as u32);
        Constellation {
            name: name.to_string(),
            epoch,
            shells,
            satellites,
            shell_offsets,
        }
    }

    /// Constellation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reference epoch shared by all satellites.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The shell specifications.
    pub fn shells(&self) -> &[ShellSpec] {
        &self.shells
    }

    /// Total number of satellites.
    pub fn num_satellites(&self) -> usize {
        self.satellites.len()
    }

    /// All satellites, ordered by [`SatId`].
    pub fn satellites(&self) -> &[Satellite] {
        &self.satellites
    }

    /// One satellite by id.
    pub fn satellite(&self, id: SatId) -> &Satellite {
        &self.satellites[id.0 as usize]
    }

    /// The shell spec a satellite belongs to.
    pub fn shell_of(&self, id: SatId) -> &ShellSpec {
        &self.shells[self.satellite(id).shell as usize]
    }

    /// The minimum elevation angle that applies to a satellite.
    pub fn min_elevation_of(&self, id: SatId) -> Angle {
        self.shell_of(id).min_elevation
    }

    /// The flat id of the satellite at `(shell, plane, slot)`.
    ///
    /// # Panics
    /// Panics when any index is out of range.
    pub fn id_at(&self, shell: u32, plane: u32, slot: u32) -> SatId {
        let spec = &self.shells[shell as usize];
        assert!(plane < spec.num_planes && slot < spec.sats_per_plane);
        SatId(self.shell_offsets[shell as usize] + plane * spec.sats_per_plane + slot)
    }

    /// ECEF positions of every satellite at `t` seconds after the epoch.
    pub fn snapshot(&self, t: f64) -> Snapshot {
        let gmst = leo_geo::gmst(self.epoch, t);
        Snapshot {
            time_s: t,
            positions: self
                .satellites
                .iter()
                .map(|s| s.propagator.position_eci(t).to_ecef(gmst))
                .collect(),
        }
    }

    /// ECI position of one satellite at `t`.
    pub fn position_eci(&self, id: SatId, t: f64) -> Eci {
        self.satellite(id).propagator.position_eci(t)
    }

    /// ECEF position of one satellite at `t`.
    pub fn position_ecef(&self, id: SatId, t: f64) -> Ecef {
        self.satellite(id).propagator.position_ecef(t)
    }

    /// Geodetic sub-satellite point (spherical model) of one satellite.
    pub fn subpoint(&self, id: SatId, t: f64) -> Geodetic {
        self.satellite(id).propagator.subpoint(t)
    }

    /// Exports every satellite as a synthesized TLE (catalog numbers are
    /// `70000 + SatId`).
    pub fn to_tles(&self) -> Vec<Tle> {
        self.satellites
            .iter()
            .map(|s| {
                let shell_name = &self.shells[s.shell as usize].name;
                Tle::synthesize(
                    &format!("{} P{}S{}", shell_name.to_uppercase(), s.plane, s.slot),
                    70_000 + s.id.0,
                    self.epoch,
                    s.propagator.elements(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shell::WalkerPattern;

    fn small() -> Constellation {
        Constellation::from_shells(
            "small",
            vec![
                ShellSpec {
                    name: "a".into(),
                    altitude_m: 550e3,
                    inclination: Angle::from_degrees(53.0),
                    num_planes: 3,
                    sats_per_plane: 4,
                    phase_factor: 1,
                    pattern: WalkerPattern::Delta,
                    min_elevation: Angle::from_degrees(25.0),
                },
                ShellSpec {
                    name: "b".into(),
                    altitude_m: 1110e3,
                    inclination: Angle::from_degrees(53.8),
                    num_planes: 2,
                    sats_per_plane: 5,
                    phase_factor: 0,
                    pattern: WalkerPattern::Delta,
                    min_elevation: Angle::from_degrees(25.0),
                },
            ],
        )
    }

    #[test]
    fn satellite_count_and_ids_are_dense() {
        let c = small();
        assert_eq!(c.num_satellites(), 3 * 4 + 2 * 5);
        for (i, s) in c.satellites().iter().enumerate() {
            assert_eq!(s.id, SatId(i as u32));
        }
    }

    #[test]
    fn id_at_round_trips_with_satellite_structure() {
        let c = small();
        for s in c.satellites() {
            assert_eq!(c.id_at(s.shell, s.plane, s.slot), s.id);
        }
    }

    #[test]
    fn shell_of_matches_altitude() {
        let c = small();
        let first = c.satellites()[0].id;
        let last = c.satellites().last().unwrap().id;
        assert_eq!(c.shell_of(first).name, "a");
        assert_eq!(c.shell_of(last).name, "b");
    }

    #[test]
    fn snapshot_positions_have_correct_radii() {
        let c = small();
        let snap = c.snapshot(600.0);
        assert_eq!(snap.len(), c.num_satellites());
        for (id, pos) in snap.iter() {
            let expect = leo_geo::consts::EARTH_RADIUS_MEAN_M + c.shell_of(id).altitude_m;
            assert!((pos.0.norm() - expect).abs() < 1.0, "{id}");
        }
    }

    #[test]
    fn snapshot_agrees_with_per_satellite_query() {
        let c = small();
        let t = 1234.5;
        let snap = c.snapshot(t);
        for s in c.satellites() {
            let d = snap.position(s.id).0.distance(c.position_ecef(s.id, t).0);
            assert!(d < 1e-6);
        }
    }

    #[test]
    fn satellites_in_a_plane_share_their_orbital_plane() {
        let c = small();
        // Same shell, same plane → same RAAN and inclination.
        let a = c.satellite(c.id_at(0, 1, 0)).propagator.elements().raan;
        let b = c.satellite(c.id_at(0, 1, 3)).propagator.elements().raan;
        assert_eq!(a, b);
    }

    #[test]
    fn tle_export_round_trips() {
        let c = small();
        let tles = c.to_tles();
        assert_eq!(tles.len(), c.num_satellites());
        for (tle, sat) in tles.iter().zip(c.satellites()) {
            let text = tle.format();
            let back = Tle::parse(&text).expect("round-trip");
            let orig = sat.propagator.elements();
            assert!(
                (back.elements.semi_major_axis_m - orig.semi_major_axis_m).abs() < 200.0,
                "sma mismatch for {}",
                sat.id
            );
            assert!(
                (back.elements.inclination.degrees() - orig.inclination.degrees()).abs() < 1e-3
            );
        }
    }

    #[test]
    fn distinct_satellites_do_not_collide_at_epoch() {
        let c = small();
        let snap = c.snapshot(0.0);
        for (i, (_, a)) in snap.iter().enumerate() {
            for (_, b) in snap.iter().skip(i + 1) {
                assert!(a.0.distance(b.0) > 1e3, "satellites coincide");
            }
        }
    }
}
