//! Filed constellation configurations.
//!
//! Shell parameters are taken from the operators' FCC filings — the same
//! sources the paper cites:
//!
//! * **Starlink Phase I** (SpaceX 2019 modification, 4,409 satellites):
//!   1,584 @ 550 km / 53.0°, 1,600 @ 1,110 km / 53.8°, 400 @ 1,130 km /
//!   74.0°, 375 @ 1,275 km / 81.0°, 450 @ 1,325 km / 70.0°.
//! * **Kuiper** (Kuiper Systems 2019 technical appendix, 3,236
//!   satellites): 1,156 @ 630 km / 51.9°, 1,296 @ 610 km / 42.0°,
//!   784 @ 590 km / 33.0°.
//! * **Telesat** (2020 modification): 351 satellites in a polar + inclined
//!   hybrid (78 @ 1,015 km / 98.98°, 273 @ 1,325 km / 50.88°) — included
//!   because §1 of the paper names Telesat among the >1,000-satellite
//!   proposals (its later expansion); useful as a smaller comparison
//!   point.
//!
//! Minimum elevation angles follow the filings (25° Starlink, 35° Kuiper,
//! 10° Telesat — Telesat files very low elevation masks for its polar
//! shell). The Walker phase factors are not public; we use the offsets
//! adopted by the Hypatia simulator, which the paper's group published.
//! Fig. 1/2 shapes are insensitive to phasing (verified by the
//! `ablation_sticky` bench's phasing sweep).

use crate::constellation::Constellation;
use crate::shell::{ShellSpec, WalkerPattern};
use leo_geo::Angle;

/// Starlink's minimum elevation angle (degrees) from the FCC filing.
pub const STARLINK_MIN_ELEVATION_DEG: f64 = 25.0;

/// Kuiper's minimum elevation angle (degrees) from the FCC filing.
pub const KUIPER_MIN_ELEVATION_DEG: f64 = 35.0;

fn shell(
    name: &str,
    altitude_km: f64,
    incl_deg: f64,
    planes: u32,
    spp: u32,
    phase: u32,
    min_el_deg: f64,
) -> ShellSpec {
    ShellSpec {
        name: name.to_string(),
        altitude_m: altitude_km * 1e3,
        inclination: Angle::from_degrees(incl_deg),
        num_planes: planes,
        sats_per_plane: spp,
        phase_factor: phase,
        pattern: WalkerPattern::Delta,
        min_elevation: Angle::from_degrees(min_el_deg),
    }
}

/// The five shells of Starlink Phase I (4,409 satellites).
pub fn starlink_phase1_shells() -> Vec<ShellSpec> {
    let e = STARLINK_MIN_ELEVATION_DEG;
    vec![
        shell("starlink-550", 550.0, 53.0, 72, 22, 11, e),
        shell("starlink-1110", 1110.0, 53.8, 32, 50, 17, e),
        shell("starlink-1130", 1130.0, 74.0, 8, 50, 17, e),
        shell("starlink-1275", 1275.0, 81.0, 5, 75, 25, e),
        shell("starlink-1325", 1325.0, 70.0, 6, 75, 25, e),
    ]
}

/// Starlink Phase I: 4,409 satellites in 5 shells.
pub fn starlink_phase1() -> Constellation {
    Constellation::from_shells("Starlink Phase I", starlink_phase1_shells())
}

/// Starlink Phase I with a uniform custom minimum-elevation mask.
pub fn starlink_phase1_with_elevation(min_el_deg: f64) -> Constellation {
    let shells = starlink_phase1_shells()
        .into_iter()
        .map(|mut s| {
            s.min_elevation = Angle::from_degrees(min_el_deg);
            s
        })
        .collect();
    Constellation::from_shells("Starlink Phase I (custom mask)", shells)
}

/// Starlink Phase I under the conservative 40° elevation mask used by
/// the authors' earlier topology work (CoNEXT '19) — the mask that
/// reproduces the paper's §3.2/§5 numbers (16 ms West-Africa meetup RTT,
/// 164 s Sticky hand-off intervals). The FCC-filed 25° mask in
/// [`starlink_phase1`] reproduces Figs 1/2/4/5.
pub fn starlink_phase1_conservative() -> Constellation {
    let shells = starlink_phase1_shells()
        .into_iter()
        .map(|mut s| {
            s.min_elevation = Angle::from_degrees(40.0);
            s
        })
        .collect();
    Constellation::from_shells("Starlink Phase I (40° mask)", shells)
}

/// Only the first (550 km) Starlink shell — the 1,584 satellites actually
/// being launched first; convenient for faster simulations.
pub fn starlink_550_only() -> Constellation {
    Constellation::from_shells(
        "Starlink 550km shell",
        vec![starlink_phase1_shells().remove(0)],
    )
}

/// The three shells of Kuiper (3,236 satellites).
pub fn kuiper_shells() -> Vec<ShellSpec> {
    let e = KUIPER_MIN_ELEVATION_DEG;
    vec![
        shell("kuiper-630", 630.0, 51.9, 34, 34, 17, e),
        shell("kuiper-610", 610.0, 42.0, 36, 36, 18, e),
        shell("kuiper-590", 590.0, 33.0, 28, 28, 14, e),
    ]
}

/// Kuiper: 3,236 satellites in 3 shells.
pub fn kuiper() -> Constellation {
    Constellation::from_shells("Kuiper", kuiper_shells())
}

/// Telesat's 351-satellite hybrid constellation.
pub fn telesat() -> Constellation {
    Constellation::from_shells(
        "Telesat",
        vec![
            ShellSpec {
                pattern: WalkerPattern::Star,
                ..shell("telesat-polar", 1015.0, 98.98, 6, 13, 1, 10.0)
            },
            shell("telesat-inclined", 1325.0, 50.88, 21, 13, 7, 10.0),
        ],
    )
}

/// Looks a preset up by name (`"starlink"`, `"starlink-550"`, `"kuiper"`,
/// `"telesat"`), case-insensitive. Used by the experiment binaries.
pub fn by_name(name: &str) -> Option<Constellation> {
    match name.to_ascii_lowercase().as_str() {
        "starlink" | "starlink-phase1" | "starlink-p1" => Some(starlink_phase1()),
        "starlink-550" => Some(starlink_550_only()),
        "kuiper" => Some(kuiper()),
        "telesat" => Some(telesat()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starlink_phase1_has_4409_satellites() {
        // §3.1 of the paper: "the Phase I configuration, comprising 4,409
        // satellites".
        assert_eq!(starlink_phase1().num_satellites(), 4409);
    }

    #[test]
    fn kuiper_has_3236_satellites() {
        assert_eq!(kuiper().num_satellites(), 3236);
    }

    #[test]
    fn telesat_has_351_satellites() {
        assert_eq!(telesat().num_satellites(), 351);
    }

    #[test]
    fn first_starlink_shell_matches_the_launched_configuration() {
        let shells = starlink_phase1_shells();
        assert_eq!(shells[0].num_planes, 72);
        assert_eq!(shells[0].sats_per_plane, 22);
        assert!((shells[0].altitude_m - 550e3).abs() < 1.0);
        assert!((shells[0].inclination.degrees() - 53.0).abs() < 1e-9);
    }

    #[test]
    fn every_preset_shell_validates() {
        for s in starlink_phase1_shells().into_iter().chain(kuiper_shells()) {
            assert!(s.validate().is_ok(), "{}", s.name);
        }
    }

    #[test]
    fn kuiper_inclinations_cap_coverage_below_60_degrees() {
        // §3.1: "Kuiper's design does not provide service beyond 60°
        // latitude" — no Kuiper shell is inclined above 52°.
        for s in kuiper_shells() {
            assert!(s.inclination.degrees() < 52.0);
        }
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(by_name("Starlink").is_some());
        assert!(by_name("KUIPER").is_some());
        assert!(by_name("starlink-550").is_some());
        assert!(by_name("oneweb").is_none());
    }
}
