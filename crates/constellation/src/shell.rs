//! A single Walker shell: many circular orbits at one altitude and
//! inclination, arranged in evenly spaced planes.

use leo_geo::Angle;
use leo_orbit::KeplerianElements;
use serde::{Deserialize, Serialize};

/// How the shell's ascending nodes are spread in right ascension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WalkerPattern {
    /// Walker *delta*: planes spread over the full 360° of RAAN.
    /// Used by every inclined mega-constellation shell (Starlink, Kuiper).
    #[default]
    Delta,
    /// Walker *star*: planes spread over 180°, producing counter-rotating
    /// "seams" — the classic polar-constellation layout (e.g. Iridium).
    Star,
}

impl WalkerPattern {
    /// The RAAN span over which planes are distributed, degrees.
    pub fn raan_span_deg(self) -> f64 {
        match self {
            WalkerPattern::Delta => 360.0,
            WalkerPattern::Star => 180.0,
        }
    }
}

/// Specification of one Walker shell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShellSpec {
    /// Human-readable shell name, e.g. `"starlink-550"`.
    pub name: String,
    /// Orbit altitude above the mean-radius sphere, meters.
    pub altitude_m: f64,
    /// Orbital inclination.
    pub inclination: Angle,
    /// Number of orbital planes.
    pub num_planes: u32,
    /// Satellites per plane.
    pub sats_per_plane: u32,
    /// Walker phasing factor `F ∈ [0, num_planes)`: satellites in adjacent
    /// planes are offset in phase by `F × 360° / total_sats`.
    pub phase_factor: u32,
    /// RAAN distribution pattern.
    pub pattern: WalkerPattern,
    /// Minimum elevation angle for ground visibility (per the operator's
    /// FCC filing; 25° for Starlink, 35° for Kuiper).
    pub min_elevation: Angle,
}

impl ShellSpec {
    /// Total number of satellites in the shell.
    pub fn total_sats(&self) -> u32 {
        self.num_planes * self.sats_per_plane
    }

    /// The Keplerian elements of the satellite at (`plane`, `slot`).
    ///
    /// Plane `p` has RAAN `p × span / num_planes`; slot `s` within a plane
    /// has mean anomaly `s × 360° / sats_per_plane` plus the Walker phase
    /// offset `p × F × 360° / total_sats`.
    ///
    /// # Panics
    /// Panics when `plane` or `slot` is out of range.
    pub fn elements(&self, plane: u32, slot: u32) -> KeplerianElements {
        assert!(plane < self.num_planes, "plane {plane} out of range");
        assert!(slot < self.sats_per_plane, "slot {slot} out of range");
        let raan_deg = self.pattern.raan_span_deg() * plane as f64 / self.num_planes as f64;
        let ma_deg = 360.0 * slot as f64 / self.sats_per_plane as f64
            + 360.0 * (plane as f64 * self.phase_factor as f64) / self.total_sats() as f64;
        KeplerianElements::circular(
            self.altitude_m,
            self.inclination,
            Angle::from_degrees(raan_deg),
            Angle::from_degrees(ma_deg),
        )
    }

    /// Iterates over all `(plane, slot)` pairs in the shell, plane-major.
    pub fn positions(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let spp = self.sats_per_plane;
        (0..self.num_planes).flat_map(move |p| (0..spp).map(move |s| (p, s)))
    }

    /// Validates the shell parameters.
    pub fn validate(&self) -> Result<(), ShellError> {
        if self.num_planes == 0 || self.sats_per_plane == 0 {
            return Err(ShellError::Empty);
        }
        if self.phase_factor >= self.num_planes.max(1) * self.sats_per_plane.max(1) {
            return Err(ShellError::PhaseFactor {
                factor: self.phase_factor,
                total: self.total_sats(),
            });
        }
        if !(100e3..2_000e3).contains(&self.altitude_m) {
            return Err(ShellError::AltitudeOutsideLeo(self.altitude_m));
        }
        let el = self.min_elevation.degrees();
        if !(0.0..90.0).contains(&el) {
            return Err(ShellError::MinElevation(el));
        }
        Ok(())
    }
}

/// Validation failures for [`ShellSpec::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShellError {
    /// Zero planes or zero satellites per plane.
    Empty,
    /// Phase factor not below the total satellite count.
    PhaseFactor {
        /// The offending factor.
        factor: u32,
        /// Total satellites in the shell.
        total: u32,
    },
    /// Altitude outside the LEO band (100–2,000 km).
    AltitudeOutsideLeo(f64),
    /// Minimum elevation outside `[0°, 90°)`.
    MinElevation(f64),
}

impl std::fmt::Display for ShellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShellError::Empty => write!(f, "shell has no satellites"),
            ShellError::PhaseFactor { factor, total } => {
                write!(f, "phase factor {factor} must be < total sats {total}")
            }
            ShellError::AltitudeOutsideLeo(a) => {
                write!(f, "altitude {} km outside LEO (100-2000 km)", a / 1e3)
            }
            ShellError::MinElevation(e) => write!(f, "min elevation {e}° outside [0°, 90°)"),
        }
    }
}

impl std::error::Error for ShellError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn shell(planes: u32, spp: u32, f: u32) -> ShellSpec {
        ShellSpec {
            name: "test".into(),
            altitude_m: 550e3,
            inclination: Angle::from_degrees(53.0),
            num_planes: planes,
            sats_per_plane: spp,
            phase_factor: f,
            pattern: WalkerPattern::Delta,
            min_elevation: Angle::from_degrees(25.0),
        }
    }

    #[test]
    fn total_count_is_planes_times_slots() {
        assert_eq!(shell(72, 22, 0).total_sats(), 1584);
    }

    #[test]
    fn raan_is_evenly_spaced_over_the_pattern_span() {
        let s = shell(4, 1, 0);
        let raans: Vec<f64> = (0..4).map(|p| s.elements(p, 0).raan.degrees()).collect();
        assert_eq!(raans, vec![0.0, 90.0, 180.0, 270.0]);

        let mut star = shell(4, 1, 0);
        star.pattern = WalkerPattern::Star;
        let raans: Vec<f64> = (0..4).map(|p| star.elements(p, 0).raan.degrees()).collect();
        assert_eq!(raans, vec![0.0, 45.0, 90.0, 135.0]);
    }

    #[test]
    fn slots_are_evenly_spaced_in_mean_anomaly() {
        let s = shell(1, 8, 0);
        for slot in 0..8 {
            let ma = s.elements(0, slot).mean_anomaly.degrees();
            assert!((ma - slot as f64 * 45.0).abs() < 1e-9);
        }
    }

    #[test]
    fn phase_factor_shifts_adjacent_planes() {
        let s = shell(10, 10, 3);
        let base = s.elements(0, 0).mean_anomaly.degrees();
        let next = s.elements(1, 0).mean_anomaly.degrees();
        // F × 360 / T = 3 × 360 / 100 = 10.8°.
        assert!((next - base - 10.8).abs() < 1e-9);
    }

    #[test]
    fn positions_iterator_covers_every_satellite_once() {
        let s = shell(5, 7, 1);
        let all: Vec<_> = s.positions().collect();
        assert_eq!(all.len(), 35);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 35);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert_eq!(shell(0, 10, 0).validate(), Err(ShellError::Empty));
        assert!(matches!(
            shell(2, 2, 4).validate(),
            Err(ShellError::PhaseFactor { .. })
        ));
        let mut s = shell(2, 2, 0);
        s.altitude_m = 50e3;
        assert!(matches!(
            s.validate(),
            Err(ShellError::AltitudeOutsideLeo(_))
        ));
        let mut s = shell(2, 2, 0);
        s.min_elevation = Angle::from_degrees(95.0);
        assert!(matches!(s.validate(), Err(ShellError::MinElevation(_))));
        assert!(shell(72, 22, 11).validate().is_ok());
    }

    #[test]
    fn all_elements_share_altitude_and_inclination() {
        let s = shell(6, 4, 2);
        for (p, slot) in s.positions() {
            let e = s.elements(p, slot);
            assert!((e.perigee_altitude_m() - 550e3).abs() < 1e-6);
            assert!((e.inclination.degrees() - 53.0).abs() < 1e-12);
            assert!(e.validate().is_ok());
        }
    }

    proptest! {
        #[test]
        fn prop_mean_anomalies_within_a_plane_are_distinct(
            planes in 1u32..20,
            spp in 2u32..40,
            f in 0u32..5,
        ) {
            let s = shell(planes, spp, f.min(planes * spp - 1));
            let plane = 0;
            let mut mas: Vec<f64> = (0..spp)
                .map(|slot| s.elements(plane, slot).mean_anomaly.normalized().degrees())
                .collect();
            mas.sort_by(f64::total_cmp);
            for w in mas.windows(2) {
                prop_assert!(w[1] - w[0] > 1e-6);
            }
        }

        #[test]
        fn prop_raans_are_unique_across_planes(
            planes in 2u32..40,
            spp in 1u32..10,
        ) {
            let s = shell(planes, spp, 0);
            let mut raans: Vec<f64> = (0..planes)
                .map(|p| s.elements(p, 0).raan.normalized().degrees())
                .collect();
            raans.sort_by(f64::total_cmp);
            for w in raans.windows(2) {
                prop_assert!(w[1] - w[0] > 1e-6);
            }
        }
    }
}
