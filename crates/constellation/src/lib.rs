//! # leo-constellation
//!
//! Walker-shell mega-constellation generator with the exact Starlink
//! Phase I and Kuiper configurations evaluated by the paper.
//!
//! * [`shell`] — a single Walker shell (altitude, inclination, planes ×
//!   satellites-per-plane, phasing, minimum elevation) and its satellite
//!   generator.
//! * [`presets`] — the filed constellation configurations: Starlink
//!   Phase I (4,409 satellites in 5 shells, per the 2019 FCC
//!   modification), Kuiper (3,236 satellites in 3 shells), Telesat, and a
//!   GEO reference satellite.
//! * [`constellation`] — a whole constellation: satellite identity
//!   (shell / plane / slot), propagators, position snapshots at arbitrary
//!   simulation times, and TLE export.
//!
//! The coordinate and force-model conventions follow [`leo_orbit`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constellation;
pub mod presets;
pub mod shell;

pub use constellation::{Constellation, SatId, Satellite, Snapshot};
pub use shell::{ShellSpec, WalkerPattern};
