//! Power and thermal budgets (§4, "Power").
//!
//! > "The HPE server operating at 225 W (350 W) would consume 15 % (23 %)
//! > of this power. This is quite large (…) Another related problem is
//! > the increased heat generation. Heat is harder to dissipate without
//! > an atmosphere, so additional radiators (…) may be necessary."
//!
//! The solar/battery model uses the eclipse geometry from
//! [`leo_geo::sun::eclipse_fraction`]: the array only generates in
//! sunlight, so sustaining a constant load `P` requires orbit-average
//! generation `P / (1 − f_eclipse)` plus battery capacity to ride through
//! the eclipse arc.

use crate::hardware::{SatelliteBus, ServerSpec};
use leo_geo::sun::eclipse_fraction;
use leo_geo::Angle;
use serde::{Deserialize, Serialize};

/// Stefan–Boltzmann constant, W m⁻² K⁻⁴.
pub const STEFAN_BOLTZMANN: f64 = 5.670_374_419e-8;

/// Power impact of hosting a server on a satellite bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBudget {
    /// Server draw as a fraction of the bus's orbit-average solar power,
    /// at the typical operating point.
    pub typical_fraction: f64,
    /// Same at the peak operating point.
    pub peak_fraction: f64,
}

impl PowerBudget {
    /// Computes the §4 power fractions.
    pub fn compute(server: &ServerSpec, bus: &SatelliteBus) -> Self {
        PowerBudget {
            typical_fraction: server.typical_power_w / bus.avg_solar_power_w,
            peak_fraction: server.peak_power_w / bus.avg_solar_power_w,
        }
    }
}

/// Battery energy (watt-hours) needed to carry a constant load through
/// the worst-case eclipse at the given altitude (β = 0 maximizes the
/// eclipse arc).
pub fn battery_wh_for_load(load_w: f64, altitude_m: f64) -> f64 {
    let f = eclipse_fraction(altitude_m, Angle::ZERO);
    // Orbital period from Kepler's third law.
    let a = leo_geo::consts::EARTH_RADIUS_MEAN_M + altitude_m;
    let period_s =
        2.0 * std::f64::consts::PI * (a.powi(3) / leo_geo::consts::EARTH_MU_M3_S2).sqrt();
    load_w * (f * period_s) / 3600.0
}

/// Extra orbit-average generation (watts) the array must supply so that a
/// constant `load_w` is sustained across sunlight and eclipse, including
/// battery round-trip losses during the eclipse fraction.
pub fn generation_w_for_load(load_w: f64, altitude_m: f64, battery_efficiency: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&battery_efficiency) && battery_efficiency > 0.0,
        "bad efficiency {battery_efficiency}"
    );
    let f = eclipse_fraction(altitude_m, Angle::ZERO);
    // Sunlit fraction powers the load directly; the eclipse share cycles
    // through the battery at the given efficiency.
    let direct = load_w * (1.0 - f);
    let stored = load_w * f / battery_efficiency;
    (direct + stored) / (1.0 - f)
}

/// Radiator area (m²) required to reject `heat_w` at radiator temperature
/// `temp_k` with emissivity `emissivity`, radiating to deep space
/// (background ≈ 3 K, negligible).
pub fn radiator_area_m2(heat_w: f64, temp_k: f64, emissivity: f64) -> f64 {
    assert!(temp_k > 0.0 && (0.0..=1.0).contains(&emissivity) && emissivity > 0.0);
    heat_w / (emissivity * STEFAN_BOLTZMANN * temp_k.powi(4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_power_fractions_hold() {
        let p = PowerBudget::compute(&ServerSpec::hpe_dl325_gen10(), &SatelliteBus::starlink_v1());
        // Paper: 15 % at 225 W, 23 % at 350 W.
        assert!(
            (p.typical_fraction - 0.15).abs() < 0.005,
            "{}",
            p.typical_fraction
        );
        assert!(
            (p.peak_fraction - 0.2333).abs() < 0.005,
            "{}",
            p.peak_fraction
        );
    }

    #[test]
    fn battery_for_dl325_at_starlink_altitude_is_reasonable() {
        // 225 W × ~36 min eclipse ≈ 135 Wh — a few kg of Li-ion cells.
        let wh = battery_wh_for_load(225.0, 550e3);
        assert!((100.0..180.0).contains(&wh), "{wh} Wh");
    }

    #[test]
    fn generation_requirement_exceeds_the_load() {
        // 37.5 % eclipse at β=0 → the array must generate ~375 W while
        // sunlit to carry a constant 225 W load (η = 0.9 battery).
        let gen = generation_w_for_load(225.0, 550e3, 0.9);
        assert!(gen > 225.0);
        assert!((360.0..390.0).contains(&gen), "{gen}");
    }

    #[test]
    fn perfect_battery_generation_reduces_to_load_over_sunlit_fraction() {
        let f = eclipse_fraction(550e3, Angle::ZERO);
        let gen = generation_w_for_load(100.0, 550e3, 1.0);
        assert!((gen - 100.0 / (1.0 - f)).abs() < 1e-9);
    }

    #[test]
    fn radiator_for_350w_is_about_a_square_meter() {
        // ε = 0.85, T = 300 K: A = 350 / (0.85 · σ · 300⁴) ≈ 0.9 m².
        let a = radiator_area_m2(350.0, 300.0, 0.85);
        assert!((0.7..1.2).contains(&a), "{a} m²");
    }

    #[test]
    fn hotter_radiators_are_smaller() {
        let cold = radiator_area_m2(350.0, 280.0, 0.85);
        let hot = radiator_area_m2(350.0, 330.0, 0.85);
        assert!(hot < cold);
    }

    proptest! {
        #[test]
        fn prop_generation_scales_linearly_with_load(
            load in 10.0..1000.0f64,
            k in 1.1..5.0f64,
        ) {
            let g1 = generation_w_for_load(load, 550e3, 0.9);
            let gk = generation_w_for_load(load * k, 550e3, 0.9);
            prop_assert!((gk / g1 - k).abs() < 1e-9);
        }

        #[test]
        fn prop_battery_grows_with_altitude_period(
            alt1 in 300e3..1000e3f64,
            dalt in 50e3..500e3f64,
        ) {
            // Longer period at higher altitude → longer absolute eclipse
            // (the eclipse *fraction* shrinks but the period grows faster
            // in this band).
            let lo = battery_wh_for_load(100.0, alt1);
            let hi = battery_wh_for_load(100.0, alt1 + dalt);
            prop_assert!(hi > lo * 0.8, "battery {lo} → {hi}");
        }
    }
}
