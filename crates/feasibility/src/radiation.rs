//! Radiation environment model: Van Allen geometry and the South
//! Atlantic Anomaly.
//!
//! §4, "Radiation hardening": *"in LEO, especially for orbits below the
//! inner Van Allen radiation belt (outwards from 643 km), it is likely
//! that commodity hardware is sufficient, although this is not yet a
//! fully settled question."* The open part of that question is dose
//! accumulation: even below the belt, satellites crossing the **South
//! Atlantic Anomaly** (where the inner belt dips to LEO altitudes) take
//! orders of magnitude more particle flux. This module estimates the
//! fraction of orbit time spent inside the SAA and scales a baseline
//! upset/failure rate accordingly, feeding the reliability model.

use leo_geo::consts::VAN_ALLEN_INNER_ALTITUDE_M;
use leo_geo::Geodetic;
use serde::{Deserialize, Serialize};

/// Simple elliptical footprint of the South Atlantic Anomaly at LEO
/// altitudes (centered near (−26°, −45°), semi-axes ~25° lat × 50° lon —
/// the standard rough extent at ~500 km).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaaRegion {
    /// Center latitude, degrees.
    pub center_lat_deg: f64,
    /// Center longitude, degrees.
    pub center_lon_deg: f64,
    /// Latitude semi-axis, degrees.
    pub semi_lat_deg: f64,
    /// Longitude semi-axis, degrees.
    pub semi_lon_deg: f64,
}

impl Default for SaaRegion {
    fn default() -> Self {
        SaaRegion {
            center_lat_deg: -26.0,
            center_lon_deg: -45.0,
            semi_lat_deg: 25.0,
            semi_lon_deg: 50.0,
        }
    }
}

impl SaaRegion {
    /// True when a sub-satellite point lies inside the anomaly.
    pub fn contains(&self, point: Geodetic) -> bool {
        let dlat = (point.lat.degrees() - self.center_lat_deg) / self.semi_lat_deg;
        let mut dlon = point.lon.normalized_signed().degrees() - self.center_lon_deg;
        if dlon > 180.0 {
            dlon -= 360.0;
        } else if dlon < -180.0 {
            dlon += 360.0;
        }
        let dlon = dlon / self.semi_lon_deg;
        dlat * dlat + dlon * dlon <= 1.0
    }
}

/// Fraction of time a satellite spends inside the SAA, by sampling its
/// ground track over `duration_s` every `step_s`.
pub fn saa_fraction<F>(mut subpoint_at: F, duration_s: f64, step_s: f64, region: &SaaRegion) -> f64
where
    F: FnMut(f64) -> Geodetic,
{
    assert!(duration_s > 0.0 && step_s > 0.0);
    let steps = (duration_s / step_s).ceil() as usize;
    let mut inside = 0usize;
    for i in 0..=steps {
        if region.contains(subpoint_at(i as f64 * step_s)) {
            inside += 1;
        }
    }
    inside as f64 / (steps + 1) as f64
}

/// Radiation exposure model: a baseline upset/failure rate, multiplied
/// inside the SAA, and scaled up sharply above the inner belt boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadiationModel {
    /// Baseline annual server failure rate from radiation, below the
    /// belt, outside the SAA.
    pub base_afr: f64,
    /// Flux multiplier inside the SAA (literature: 10–100× for soft
    /// errors at LEO; we default to 30×).
    pub saa_multiplier: f64,
    /// Multiplier for orbits above the inner-belt boundary.
    pub belt_multiplier: f64,
}

impl Default for RadiationModel {
    fn default() -> Self {
        RadiationModel {
            base_afr: 0.02,
            saa_multiplier: 30.0,
            belt_multiplier: 8.0,
        }
    }
}

impl RadiationModel {
    /// Effective annual radiation-induced failure rate for a satellite
    /// at `altitude_m` spending `saa_time_fraction` of its orbit in the
    /// anomaly.
    pub fn effective_afr(&self, altitude_m: f64, saa_time_fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&saa_time_fraction));
        let belt = if altitude_m >= VAN_ALLEN_INNER_ALTITUDE_M {
            self.belt_multiplier
        } else {
            1.0
        };
        let saa_weighted = 1.0 + saa_time_fraction * (self.saa_multiplier - 1.0);
        self.base_afr * belt * saa_weighted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_geo::{Angle, Epoch};
    use leo_orbit::{KeplerianElements, Propagator};

    #[test]
    fn saa_contains_its_center_and_not_the_antipode() {
        let saa = SaaRegion::default();
        assert!(saa.contains(Geodetic::ground(-26.0, -45.0)));
        assert!(!saa.contains(Geodetic::ground(26.0, 135.0)));
        assert!(!saa.contains(Geodetic::ground(50.0, -45.0)));
    }

    #[test]
    fn saa_handles_longitude_wraparound() {
        let saa = SaaRegion {
            center_lon_deg: 170.0,
            ..SaaRegion::default()
        };
        assert!(saa.contains(Geodetic::ground(-26.0, -175.0)));
    }

    #[test]
    fn starlink_orbit_crosses_the_saa_a_few_percent_of_the_time() {
        // A 53°-inclined LEO orbit passes through the SAA ellipse on some
        // of its ground tracks: expect a small but nonzero fraction.
        let e =
            KeplerianElements::circular(550e3, Angle::from_degrees(53.0), Angle::ZERO, Angle::ZERO);
        let p = Propagator::new(e, Epoch::J2000);
        let f = saa_fraction(|t| p.subpoint(t), 86_400.0, 30.0, &SaaRegion::default());
        assert!((0.01..0.20).contains(&f), "SAA fraction {f}");
    }

    #[test]
    fn equatorial_high_inclination_contrast() {
        // A polar orbit spends less relative time in the low-latitude SAA
        // than an orbit whose inclination matches the SAA's latitude band.
        let run = |incl: f64| {
            let e = KeplerianElements::circular(
                550e3,
                Angle::from_degrees(incl),
                Angle::ZERO,
                Angle::ZERO,
            );
            let p = Propagator::new(e, Epoch::J2000);
            saa_fraction(|t| p.subpoint(t), 86_400.0, 30.0, &SaaRegion::default())
        };
        let matched = run(26.0);
        let polar = run(90.0);
        assert!(matched > polar, "matched {matched} vs polar {polar}");
    }

    #[test]
    fn effective_afr_scales_with_saa_time_and_altitude() {
        let m = RadiationModel::default();
        let clean = m.effective_afr(550e3, 0.0);
        let saa = m.effective_afr(550e3, 0.05);
        let belt = m.effective_afr(1130e3, 0.05);
        assert_eq!(clean, m.base_afr);
        assert!(saa > clean);
        assert!(belt > saa);
        // 5 % SAA time at 30× ≈ 2.45× the base rate.
        assert!((saa / clean - 2.45).abs() < 0.01);
    }

    #[test]
    fn radiation_feeds_the_reliability_model_sensibly() {
        // Plug the effective AFR into the fleet survival closed form:
        // below-belt satellites keep most servers, above-belt shells
        // visibly fewer — the quantitative version of §4's "not yet a
        // fully settled question".
        use crate::reliability::ReliabilityParams;
        let m = RadiationModel::default();
        let below = ReliabilityParams {
            annual_failure_rate: m.effective_afr(550e3, 0.04),
            satellite_life_years: 5.0,
        }
        .steady_state_working_fraction();
        let above = ReliabilityParams {
            annual_failure_rate: m.effective_afr(1275e3, 0.04),
            satellite_life_years: 5.0,
        }
        .steady_state_working_fraction();
        assert!(below > 0.85, "below-belt fraction {below}");
        assert!(above < below, "above {above} vs below {below}");
    }
}
