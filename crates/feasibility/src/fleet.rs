//! Fleet replenishment simulation over years.
//!
//! §4, "Life-cycle": *"if a satellite-server malfunctions before its
//! expected life, unlike in a data center, it would not be replaced
//! immediately. However, operators continually replenish their satellite
//! fleet, and maintain backup satellites per orbit. Thus, even with a
//! substantial fraction of servers failing, a large LEO constellation
//! could continue to provide valuable in-orbit computing resources."*
//!
//! [`ReliabilityParams`](crate::reliability::ReliabilityParams) gives the
//! steady state in closed form; this module simulates the *transient*:
//! a launch campaign standing the fleet up, satellites aging out at
//! design life, servers failing without repair, and per-orbit spares
//! promoted when a whole satellite (not just its server) dies.

use serde::{Deserialize, Serialize};

/// Fleet simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetParams {
    /// Target constellation size (active satellites).
    pub target_fleet: usize,
    /// Satellites delivered per launch (Starlink: 60).
    pub sats_per_launch: usize,
    /// Launches per year during build-out and replenishment.
    pub launches_per_year: f64,
    /// Satellite design life, years.
    pub satellite_life_years: f64,
    /// Annual *server* failure rate (server dies, satellite lives).
    pub server_afr: f64,
    /// Annual *satellite* (whole-bus) failure rate.
    pub satellite_afr: f64,
    /// Spare satellites kept per plane-group, promoted on bus failure,
    /// as a fraction of the fleet (e.g. 0.02 = 2 % spares).
    pub spare_fraction: f64,
}

impl FleetParams {
    /// A Starlink-Phase-I-like campaign: 4,409 satellites, 60 per
    /// launch, 24 launches/year, 5-year life.
    pub fn starlink_phase1() -> Self {
        FleetParams {
            target_fleet: 4409,
            sats_per_launch: 60,
            launches_per_year: 24.0,
            satellite_life_years: 5.0,
            server_afr: 0.08,
            satellite_afr: 0.02,
            spare_fraction: 0.02,
        }
    }
}

/// One year of fleet state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetYear {
    /// Year index (0 = campaign start).
    pub year: f64,
    /// Active satellites (bus alive, in service).
    pub active_sats: f64,
    /// Active satellites whose server still works.
    pub working_servers: f64,
    /// Cumulative satellites launched.
    pub launched: f64,
}

/// Deterministic (expected-value) fleet simulation, stepped monthly.
///
/// Cohort model: each launch creates a cohort; cohorts age, lose servers
/// at `server_afr`, lose buses at `satellite_afr`, and retire at design
/// life. Launch cadence continues for as long as the fleet is below
/// target (build-out) and then replaces retiring cohorts.
pub fn simulate_fleet(params: &FleetParams, years: f64) -> Vec<FleetYear> {
    assert!(years > 0.0 && params.target_fleet > 0);
    let dt = 1.0 / 12.0; // monthly steps
    let steps = (years / dt).ceil() as usize;

    /// One launch cohort.
    #[derive(Debug, Clone, Copy)]
    struct Cohort {
        age_years: f64,
        sats: f64,
        servers: f64,
    }

    let mut cohorts: Vec<Cohort> = Vec::new();
    let mut launched = 0.0;
    let mut out = Vec::new();
    let per_step_launch_budget = params.launches_per_year * dt;
    let mut launch_credit = 0.0;

    for step in 0..=steps {
        let t = step as f64 * dt;
        // Age, fail, retire.
        for c in &mut cohorts {
            c.age_years += if step == 0 { 0.0 } else { dt };
            let bus_survival = (-params.satellite_afr * dt).exp();
            let server_survival = (-(params.satellite_afr + params.server_afr) * dt).exp();
            if step > 0 {
                c.sats *= bus_survival;
                c.servers *= server_survival;
            }
        }
        cohorts.retain(|c| c.age_years < params.satellite_life_years && c.sats > 1e-6);

        // Launch while below target (including spares), spending the
        // cadence budget accumulated since the last step.
        let target = params.target_fleet as f64 * (1.0 + params.spare_fraction);
        launch_credit += per_step_launch_budget;
        loop {
            let active: f64 = cohorts.iter().map(|c| c.sats).sum();
            if launch_credit < 1.0 || active + 1.0 > target {
                break;
            }
            launch_credit -= 1.0;
            let n = params
                .sats_per_launch
                .min((target - active).ceil() as usize) as f64;
            cohorts.push(Cohort {
                age_years: 0.0,
                sats: n,
                servers: n,
            });
            launched += n;
        }
        launch_credit = launch_credit.min(6.0); // can't stockpile launches forever

        let active: f64 = cohorts.iter().map(|c| c.sats).sum();
        let servers: f64 = cohorts.iter().map(|c| c.servers).sum();
        if step % 12 == 0 {
            out.push(FleetYear {
                year: t,
                active_sats: active.min(params.target_fleet as f64),
                working_servers: servers.min(params.target_fleet as f64),
                launched,
            });
        }
    }
    out
}

/// The long-run working-server fraction from the simulation's final
/// year, for cross-checking against the closed form.
pub fn final_working_fraction(history: &[FleetYear]) -> f64 {
    let last = history.last().expect("non-empty history");
    last.working_servers / last.active_sats.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buildout_reaches_the_target_fleet() {
        let p = FleetParams::starlink_phase1();
        let h = simulate_fleet(&p, 12.0);
        let peak = h.iter().map(|y| y.active_sats).fold(0.0, f64::max);
        assert!(
            peak > p.target_fleet as f64 * 0.95,
            "peak fleet {peak} of {}",
            p.target_fleet
        );
    }

    #[test]
    fn buildout_takes_about_three_years() {
        // 4409 sats at 24 × 60 = 1,440/year ≈ 3.1 years.
        let p = FleetParams::starlink_phase1();
        let h = simulate_fleet(&p, 12.0);
        let reached = h
            .iter()
            .find(|y| y.active_sats > p.target_fleet as f64 * 0.9)
            .expect("fleet never built out");
        assert!(
            (2.0..6.0).contains(&reached.year),
            "build-out at year {}",
            reached.year
        );
    }

    #[test]
    fn servers_degrade_faster_than_buses() {
        let p = FleetParams::starlink_phase1();
        let h = simulate_fleet(&p, 12.0);
        let last = h.last().unwrap();
        assert!(last.working_servers < last.active_sats);
        assert!(last.working_servers > 0.5 * last.active_sats);
    }

    #[test]
    fn long_run_fraction_approaches_the_closed_form() {
        let p = FleetParams::starlink_phase1();
        let h = simulate_fleet(&p, 25.0);
        let sim = final_working_fraction(&h);
        let closed = crate::reliability::ReliabilityParams {
            annual_failure_rate: p.server_afr,
            satellite_life_years: p.satellite_life_years,
        }
        .steady_state_working_fraction();
        // The cohort simulation includes bus failures and launch
        // granularity the closed form ignores; agree within 10 points.
        assert!(
            (sim - closed).abs() < 0.10,
            "simulated {sim} vs closed-form {closed}"
        );
    }

    #[test]
    fn zero_failure_rates_keep_every_server() {
        let p = FleetParams {
            server_afr: 0.0,
            satellite_afr: 0.0,
            ..FleetParams::starlink_phase1()
        };
        let h = simulate_fleet(&p, 10.0);
        for y in &h {
            assert!(
                (y.working_servers - y.active_sats).abs() < 1e-6,
                "year {}: {} vs {}",
                y.year,
                y.working_servers,
                y.active_sats
            );
        }
    }

    #[test]
    fn launch_counter_is_monotone() {
        let h = simulate_fleet(&FleetParams::starlink_phase1(), 10.0);
        for w in h.windows(2) {
            assert!(w[1].launched >= w[0].launched);
        }
    }
}
