//! # leo-feasibility
//!
//! Quantitative models for §4 of the paper — *"Feasibility of in-orbit
//! compute"* — covering every axis the paper analyzes:
//!
//! * [`hardware`] — the reference hardware: HPE ProLiant DL325 Gen10
//!   server and the Starlink v1.0 satellite bus.
//! * [`mass`] — weight and volume budgets (paper: 6 % and 1 %).
//! * [`power`] — solar/battery/eclipse power model and the server's draw
//!   as a fraction of the bus budget (paper: 15 % at 225 W, 23 % at
//!   350 W), plus radiator sizing for the added heat.
//! * [`reliability`] — life-cycle model: server failures with no repair,
//!   fleet replenishment, surviving capacity over time (paper: "even with
//!   a substantial fraction of servers failing, a large LEO constellation
//!   could continue to provide valuable in-orbit computing resources").
//! * [`cost`] — launch cost per server and the 3-year TCO ratio against a
//!   terrestrial data-center server (paper: ~42,000 USD launch, ~3×).
//!
//! Constants carry doc-comment provenance to the paper's cited sources.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod fleet;
pub mod hardware;
pub mod mass;
pub mod power;
pub mod radiation;
pub mod reliability;
pub mod simulation;

pub use hardware::{SatelliteBus, ServerSpec};
pub use mass::MassBudget;
pub use power::PowerBudget;
