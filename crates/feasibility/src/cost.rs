//! Cost model (§4, "Cost").
//!
//! > "Based on the per-kilogram launch cost for the Falcon 9 rockets used
//! > for Starlink launches, and the 15.6 kg server weight, the cost of
//! > launching the server is ~42,000 USD. The per-server total cost of
//! > ownership for a data center is estimated to be roughly 5,000 USD per
//! > year. If we assume the satellite-server is also used for only
//! > 3 years instead of 5, then over 3 years, a coarse estimate for a
//! > satellite-server would be roughly 3× as expensive as a data center
//! > server."

use crate::hardware::ServerSpec;
use serde::{Deserialize, Serialize};

/// Falcon 9 cost per kilogram to LEO, USD (≈ $62 M list price over
/// ~22,800 kg to LEO — the figure behind the paper's 42 k USD).
pub const FALCON9_USD_PER_KG: f64 = 2_720.0;

/// Terrestrial per-server total cost of ownership, USD per year (Koomey
/// et al. as cited by the paper).
pub const DATACENTER_TCO_USD_PER_YEAR: f64 = 5_000.0;

/// Cost-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Launch cost per kilogram, USD.
    pub launch_usd_per_kg: f64,
    /// Terrestrial TCO per server-year, USD.
    pub terrestrial_tco_usd_per_year: f64,
    /// Comparison horizon, years (paper: 3).
    pub horizon_years: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            launch_usd_per_kg: FALCON9_USD_PER_KG,
            terrestrial_tco_usd_per_year: DATACENTER_TCO_USD_PER_YEAR,
            horizon_years: 3.0,
        }
    }
}

/// The cost comparison the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostComparison {
    /// Cost of launching the server's mass, USD.
    pub launch_cost_usd: f64,
    /// Terrestrial TCO over the horizon, USD.
    pub terrestrial_cost_usd: f64,
    /// Ratio satellite / terrestrial (paper: ~3×).
    pub cost_ratio: f64,
}

impl CostModel {
    /// Compares one satellite-server against a terrestrial server over
    /// the horizon. As in the paper, the orbital side counts the launch
    /// cost of the server's mass (the server hardware itself being "much
    /// cheaper than the cost of launching its weight").
    pub fn compare(&self, server: &ServerSpec) -> CostComparison {
        let launch = server.mass_kg * self.launch_usd_per_kg;
        let terrestrial = self.terrestrial_tco_usd_per_year * self.horizon_years;
        CostComparison {
            launch_cost_usd: launch,
            terrestrial_cost_usd: terrestrial,
            cost_ratio: launch / terrestrial,
        }
    }

    /// Launch cost of fitting the whole constellation with servers, USD.
    pub fn fleet_launch_cost_usd(&self, server: &ServerSpec, fleet_size: usize) -> f64 {
        server.mass_kg * self.launch_usd_per_kg * fleet_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launching_the_dl325_costs_about_42k_usd() {
        let c = CostModel::default().compare(&ServerSpec::hpe_dl325_gen10());
        assert!(
            (41_000.0..44_000.0).contains(&c.launch_cost_usd),
            "{}",
            c.launch_cost_usd
        );
    }

    #[test]
    fn three_year_ratio_is_about_3x() {
        let c = CostModel::default().compare(&ServerSpec::hpe_dl325_gen10());
        assert_eq!(c.terrestrial_cost_usd, 15_000.0);
        assert!((2.5..3.2).contains(&c.cost_ratio), "{}", c.cost_ratio);
    }

    #[test]
    fn lighter_servers_cost_proportionally_less_to_launch() {
        let model = CostModel::default();
        let big = model.compare(&ServerSpec::hpe_dl325_gen10());
        let small = model.compare(&ServerSpec::low_power_edge());
        let ratio = small.launch_cost_usd / big.launch_cost_usd;
        assert!((ratio - 8.0 / 15.6).abs() < 1e-9);
    }

    #[test]
    fn outfitting_starlink_phase1_costs_under_200m_usd() {
        // 4,409 × 42.4 k ≈ 187 M USD — small next to constellation capex,
        // which is the paper's implicit point.
        let fleet =
            CostModel::default().fleet_launch_cost_usd(&ServerSpec::hpe_dl325_gen10(), 4409);
        assert!((150e6..210e6).contains(&fleet), "{fleet}");
    }

    #[test]
    fn cheaper_launch_closes_the_gap() {
        // Starship-class pricing (~$100/kg aspiration) would make the
        // orbital server cheaper than the terrestrial TCO.
        let model = CostModel {
            launch_usd_per_kg: 100.0,
            ..CostModel::default()
        };
        let c = model.compare(&ServerSpec::hpe_dl325_gen10());
        assert!(c.cost_ratio < 0.2, "{}", c.cost_ratio);
    }
}
