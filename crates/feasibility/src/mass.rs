//! Weight and volume budgets (§4, "Weight and volume").
//!
//! > "Compared to the latest Starlink satellites launched, the weight is
//! > 6 % of a satellite's weight, and the volume is 1 %. These are
//! > significant costs, but not prohibitive."

use crate::hardware::{SatelliteBus, ServerSpec};
use serde::{Deserialize, Serialize};

/// Mass/volume impact of adding a server to a satellite bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MassBudget {
    /// Server mass as a fraction of the bus mass.
    pub mass_fraction: f64,
    /// Server volume as a fraction of the bus volume.
    pub volume_fraction: f64,
    /// Combined mass, kilograms.
    pub total_mass_kg: f64,
}

impl MassBudget {
    /// Computes the budget for one server on one bus.
    pub fn compute(server: &ServerSpec, bus: &SatelliteBus) -> Self {
        MassBudget {
            mass_fraction: server.mass_kg / bus.mass_kg,
            volume_fraction: server.volume_m3 / bus.volume_m3,
            total_mass_kg: server.mass_kg + bus.mass_kg,
        }
    }

    /// How many fewer satellites fit per launch when each carries a
    /// server, for a launcher with `payload_kg` capacity (the paper's
    /// remark that extra components "may result in fewer satellites per
    /// launch"). Returns `(without_server, with_server)`.
    pub fn satellites_per_launch(
        server: &ServerSpec,
        bus: &SatelliteBus,
        payload_kg: f64,
    ) -> (u32, u32) {
        let without = (payload_kg / bus.mass_kg).floor() as u32;
        let with = (payload_kg / (bus.mass_kg + server.mass_kg)).floor() as u32;
        (without, with)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_fractions_hold() {
        let b = MassBudget::compute(&ServerSpec::hpe_dl325_gen10(), &SatelliteBus::starlink_v1());
        // Paper: 6 % weight, 1 % volume.
        assert!(
            (b.mass_fraction - 0.06).abs() < 0.005,
            "{}",
            b.mass_fraction
        );
        assert!(
            (b.volume_fraction - 0.01).abs() < 0.003,
            "{}",
            b.volume_fraction
        );
    }

    #[test]
    fn falcon9_loses_a_few_satellites_per_launch() {
        // Starlink launches carry 60 satellites; with 15.6 kg servers the
        // same mass budget carries ~56.
        let (without, with) = MassBudget::satellites_per_launch(
            &ServerSpec::hpe_dl325_gen10(),
            &SatelliteBus::starlink_v1(),
            15_600.0,
        );
        assert_eq!(without, 60);
        assert!((55..60).contains(&with), "{with}");
    }

    #[test]
    fn low_power_server_halves_the_mass_hit() {
        let big = MassBudget::compute(&ServerSpec::hpe_dl325_gen10(), &SatelliteBus::starlink_v1());
        let small =
            MassBudget::compute(&ServerSpec::low_power_edge(), &SatelliteBus::starlink_v1());
        assert!(small.mass_fraction < big.mass_fraction * 0.6);
    }
}
