//! Life-cycle and fleet-survival model (§4, "Life-cycle").
//!
//! > "Starlink satellites will have a life of ~5 years. This is a bit
//! > longer than the typical data center server life of 3 years. Of
//! > course, if a satellite-server malfunctions before its expected life,
//! > unlike in a data center, it would not be replaced immediately.
//! > However, operators continually replenish their satellite fleet (…)
//! > Thus, even with a substantial fraction of servers failing, a large
//! > LEO constellation could continue to provide valuable in-orbit
//! > computing resources."
//!
//! The model: servers fail exponentially with a constant annual rate and
//! are never repaired in orbit; satellites retire at their design life
//! and are replaced by fresh ones (steady-state replenishment). The
//! steady-state fraction of satellites with a *working* server follows in
//! closed form, and a small deterministic fleet simulation cross-checks
//! it.

use serde::{Deserialize, Serialize};

/// Reliability parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityParams {
    /// Annual server failure rate λ (fraction/year). Data-center AFRs run
    /// 2–8 %; space adds radiation-induced faults, so 5–15 % is the band
    /// worth studying.
    pub annual_failure_rate: f64,
    /// Satellite design life, years (Starlink: 5).
    pub satellite_life_years: f64,
}

impl ReliabilityParams {
    /// Probability a server is still alive `t` years after launch.
    pub fn survival(&self, t_years: f64) -> f64 {
        (-self.annual_failure_rate * t_years).exp()
    }

    /// Steady-state fraction of the fleet with a working server, under
    /// uniform-age replenishment: the fleet's ages are uniform on
    /// `[0, L]`, so the working fraction is `∫₀ᴸ e^{−λt} dt / L
    /// = (1 − e^{−λL}) / (λL)`.
    pub fn steady_state_working_fraction(&self) -> f64 {
        let x = self.annual_failure_rate * self.satellite_life_years;
        if x < 1e-12 {
            1.0
        } else {
            (1.0 - (-x).exp()) / x
        }
    }

    /// Deterministic fleet simulation cross-check: a fleet of `n`
    /// satellites with ages spread uniformly, each alive with its
    /// survival probability; returns the expected working fraction.
    pub fn simulate_fleet_fraction(&self, n: usize) -> f64 {
        assert!(n > 0);
        let mut total = 0.0;
        for i in 0..n {
            // Satellite i's age is uniformly placed in [0, L).
            let age = (i as f64 + 0.5) / n as f64 * self.satellite_life_years;
            total += self.survival(age);
        }
        total / n as f64
    }

    /// Working servers in a constellation of `fleet_size` satellites at
    /// steady state.
    pub fn working_servers(&self, fleet_size: usize) -> f64 {
        fleet_size as f64 * self.steady_state_working_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn starlink(rate: f64) -> ReliabilityParams {
        ReliabilityParams {
            annual_failure_rate: rate,
            satellite_life_years: 5.0,
        }
    }

    #[test]
    fn survival_decays_exponentially() {
        let p = starlink(0.10);
        assert_eq!(p.survival(0.0), 1.0);
        assert!((p.survival(5.0) - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn zero_failure_rate_keeps_the_whole_fleet() {
        let p = starlink(0.0);
        assert_eq!(p.steady_state_working_fraction(), 1.0);
    }

    #[test]
    fn ten_percent_afr_keeps_about_79_percent_of_the_fleet() {
        // (1 − e^{−0.5}) / 0.5 ≈ 0.787: even a harsh 10 %/yr failure rate
        // keeps ~4/5 of servers working — the paper's qualitative claim.
        let f = starlink(0.10).steady_state_working_fraction();
        assert!((f - 0.787).abs() < 0.005, "{f}");
    }

    #[test]
    fn closed_form_matches_the_fleet_simulation() {
        for rate in [0.02, 0.05, 0.10, 0.20] {
            let p = starlink(rate);
            let closed = p.steady_state_working_fraction();
            let sim = p.simulate_fleet_fraction(100_000);
            assert!(
                (closed - sim).abs() < 1e-4,
                "rate {rate}: closed {closed} vs sim {sim}"
            );
        }
    }

    #[test]
    fn starlink_scale_fleet_retains_thousands_of_servers() {
        // 4,409 satellites at 10 %/yr AFR → ~3,470 working servers: still
        // only ~7× smaller than Akamai per the paper's comparison.
        let working = starlink(0.10).working_servers(4409);
        assert!(working > 3400.0, "{working}");
    }

    proptest! {
        #[test]
        fn prop_working_fraction_decreases_with_failure_rate(
            r1 in 0.001..0.5f64,
            dr in 0.001..0.5f64,
        ) {
            let lo = starlink(r1 + dr).steady_state_working_fraction();
            let hi = starlink(r1).steady_state_working_fraction();
            prop_assert!(lo < hi);
        }

        #[test]
        fn prop_fraction_is_a_probability(r in 0.0..1.0f64, life in 1.0..10.0f64) {
            let p = ReliabilityParams { annual_failure_rate: r, satellite_life_years: life };
            let f = p.steady_state_working_fraction();
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }
}
