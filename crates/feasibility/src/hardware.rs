//! Reference hardware specifications.
//!
//! The paper's §4 analysis is anchored on two concrete artifacts:
//!
//! * the **HPE ProLiant DL325 Gen10** server (64 cores at 2.4–3.35 GHz,
//!   up to 2 TB memory, 15.6 kg, 1U) — the commodity server whose weight,
//!   volume, power, and cost are compared against the satellite bus;
//! * the **Starlink v1.0** satellite (~260 kg, flat-panel bus with a
//!   single solar array; average available solar power estimated around
//!   1.5 kW in the paper's cited community analysis).

use serde::{Deserialize, Serialize};

/// A commodity server's physical and electrical envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Model name.
    pub name: String,
    /// Mass, kilograms.
    pub mass_kg: f64,
    /// Bounding volume, cubic meters.
    pub volume_m3: f64,
    /// Typical operating power draw, watts.
    pub typical_power_w: f64,
    /// Peak operating power draw, watts.
    pub peak_power_w: f64,
    /// CPU core count.
    pub cores: u32,
    /// Maximum memory, gigabytes.
    pub max_memory_gb: u32,
}

impl ServerSpec {
    /// The HPE ProLiant DL325 Gen10 used throughout §4.
    ///
    /// 1U chassis: 4.29 cm (H) × 43.46 cm (W) × 70.7 cm (D) ≈ 0.0132 m³;
    /// 15.6 kg per the QuickSpecs the paper cites; the paper analyzes
    /// operating points of 225 W and 350 W.
    pub fn hpe_dl325_gen10() -> Self {
        ServerSpec {
            name: "HPE ProLiant DL325 Gen10".into(),
            mass_kg: 15.6,
            volume_m3: 0.0429 * 0.4346 * 0.707,
            typical_power_w: 225.0,
            peak_power_w: 350.0,
            cores: 64,
            max_memory_gb: 2048,
        }
    }

    /// A deliberately modest edge server (half the DL325's envelope) for
    /// the lower-power alternative §4 mentions ("lower wattage servers
    /// could be used").
    pub fn low_power_edge() -> Self {
        ServerSpec {
            name: "low-power edge server".into(),
            mass_kg: 8.0,
            volume_m3: 0.0066,
            typical_power_w: 110.0,
            peak_power_w: 170.0,
            cores: 32,
            max_memory_gb: 512,
        }
    }
}

/// A satellite bus's physical envelope and power system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SatelliteBus {
    /// Bus name.
    pub name: String,
    /// Mass, kilograms.
    pub mass_kg: f64,
    /// Bus volume (stowed), cubic meters.
    pub volume_m3: f64,
    /// Orbit-average available solar power, watts.
    pub avg_solar_power_w: f64,
    /// Design life, years.
    pub design_life_years: f64,
    /// Operating altitude, meters.
    pub altitude_m: f64,
}

impl SatelliteBus {
    /// The Starlink v1.0 satellite: ~260 kg, flat-panel bus roughly
    /// 2.8 m × 1.4 m × 0.32 m stowed (≈ 1.25 m³), ~1.5 kW average solar
    /// output (the paper's estimate from array size and ISS solar
    /// efficiency), 5-year design life, 550 km.
    pub fn starlink_v1() -> Self {
        SatelliteBus {
            name: "Starlink v1.0".into(),
            mass_kg: 260.0,
            volume_m3: 2.8 * 1.4 * 0.32,
            avg_solar_power_w: 1500.0,
            design_life_years: 5.0,
            altitude_m: 550e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dl325_matches_the_quickspecs_the_paper_cites() {
        let s = ServerSpec::hpe_dl325_gen10();
        assert_eq!(s.mass_kg, 15.6);
        assert_eq!(s.cores, 64);
        assert_eq!(s.max_memory_gb, 2048);
        assert!((s.volume_m3 - 0.0132).abs() < 0.001);
    }

    #[test]
    fn starlink_bus_matches_paper_assumptions() {
        let b = SatelliteBus::starlink_v1();
        assert_eq!(b.mass_kg, 260.0);
        assert_eq!(b.avg_solar_power_w, 1500.0);
        assert_eq!(b.design_life_years, 5.0);
    }

    #[test]
    fn low_power_option_draws_less_than_half_the_dl325() {
        let big = ServerSpec::hpe_dl325_gen10();
        let small = ServerSpec::low_power_edge();
        assert!(small.typical_power_w < big.typical_power_w / 2.0);
        assert!(small.peak_power_w < big.peak_power_w / 2.0);
        assert!(small.mass_kg < big.mass_kg);
    }
}
