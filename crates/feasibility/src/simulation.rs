//! Time-domain power simulation: battery state of charge over orbits.
//!
//! §4 of the paper raises a question the average-power arithmetic cannot
//! answer: *"It is also unclear how the addition of compute skews power
//! usage over time, e.g., due to spikes in communication demands
//! coinciding with spikes in compute demands. If a satellite's power use
//! fluctuates more due to this, it may create additional challenges in
//! power management beyond the average output over time."*
//!
//! This module simulates exactly that: a satellite flying through
//! sunlight and eclipse (using the real shadow geometry from
//! [`leo_geo::sun`]), a solar array, a battery with finite capacity and
//! round-trip efficiency, and a load composed of the bus baseline, the
//! server, and optional correlated demand spikes. The output is the
//! battery state-of-charge trace and whether the satellite ever browns
//! out.

use leo_geo::sun::{in_earth_shadow, sun_direction_eci};
use leo_geo::{Epoch, Vec3};
use serde::{Deserialize, Serialize};

/// Battery model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    /// Usable capacity, watt-hours.
    pub capacity_wh: f64,
    /// Round-trip efficiency (charge × discharge), 0–1.
    pub round_trip_efficiency: f64,
}

impl Battery {
    /// A Starlink-class pack sized for bus + server (reported packs are
    /// a few kWh; we default to 2 kWh usable at 90 % round trip).
    pub fn starlink_class() -> Self {
        Battery {
            capacity_wh: 2_000.0,
            round_trip_efficiency: 0.90,
        }
    }
}

/// A power load profile over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Constant bus load (avionics, radios at baseline), watts.
    pub bus_w: f64,
    /// Constant server load, watts (0 = no server).
    pub server_w: f64,
    /// Additional spike load, watts, applied during spike windows.
    pub spike_w: f64,
    /// Spike period, seconds (a spike starts every `spike_period_s`).
    pub spike_period_s: f64,
    /// Spike duration, seconds.
    pub spike_duration_s: f64,
}

impl LoadProfile {
    /// Load at time `t`, watts.
    pub fn load_w(&self, t: f64) -> f64 {
        let base = self.bus_w + self.server_w;
        if self.spike_w <= 0.0 || self.spike_period_s <= 0.0 {
            return base;
        }
        let phase = t.rem_euclid(self.spike_period_s);
        if phase < self.spike_duration_s {
            base + self.spike_w
        } else {
            base
        }
    }
}

/// Configuration of a power simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSimConfig {
    /// Solar array output in full sun, watts.
    pub array_w: f64,
    /// Battery.
    pub battery: Battery,
    /// Load profile.
    pub load: LoadProfile,
    /// Simulation step, seconds.
    pub step_s: f64,
    /// Simulation length, seconds.
    pub duration_s: f64,
    /// Initial state of charge, 0–1.
    pub initial_soc: f64,
}

/// Result of a power simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSimResult {
    /// `(t, state_of_charge)` samples (0–1).
    pub soc_trace: Vec<(f64, f64)>,
    /// Lowest state of charge reached.
    pub min_soc: f64,
    /// Total seconds the load could not be served (battery empty).
    pub brownout_s: f64,
    /// Fraction of time in eclipse.
    pub eclipse_fraction: f64,
}

impl PowerSimResult {
    /// True when the load was served through the whole run.
    pub fn survives(&self) -> bool {
        self.brownout_s == 0.0
    }
}

/// Simulates the battery state of charge for a satellite whose ECI
/// position over time is given by `position_at` (pass a closure over a
/// [`leo_orbit::Propagator`]), starting at `epoch`.
pub fn simulate_power<F>(
    config: &PowerSimConfig,
    epoch: Epoch,
    mut position_at: F,
) -> PowerSimResult
where
    F: FnMut(f64) -> Vec3,
{
    assert!(config.step_s > 0.0 && config.duration_s > 0.0);
    assert!((0.0..=1.0).contains(&config.initial_soc));
    let eff = config.battery.round_trip_efficiency.sqrt(); // split per leg
    let mut soc_wh = config.initial_soc * config.battery.capacity_wh;
    let mut trace = Vec::new();
    let mut min_soc = config.initial_soc;
    let mut brownout_s = 0.0;
    let mut eclipse_steps = 0usize;
    let steps = (config.duration_s / config.step_s).ceil() as usize;

    for i in 0..=steps {
        let t = i as f64 * config.step_s;
        let sun = sun_direction_eci(epoch, t);
        let pos = position_at(t);
        let lit = !in_earth_shadow(leo_geo::Eci(pos), sun);
        if !lit {
            eclipse_steps += 1;
        }
        let gen = if lit { config.array_w } else { 0.0 };
        let load = config.load.load_w(t);
        let net_w = gen - load;
        let dt_h = config.step_s / 3600.0;
        if net_w >= 0.0 {
            // Charge with one-leg efficiency.
            soc_wh = (soc_wh + net_w * dt_h * eff).min(config.battery.capacity_wh);
        } else {
            // Discharge with the other leg's efficiency.
            let need_wh = -net_w * dt_h / eff;
            if soc_wh >= need_wh {
                soc_wh -= need_wh;
            } else {
                brownout_s += config.step_s * (1.0 - soc_wh / need_wh);
                soc_wh = 0.0;
            }
        }
        let soc = soc_wh / config.battery.capacity_wh;
        min_soc = min_soc.min(soc);
        trace.push((t, soc));
    }

    PowerSimResult {
        soc_trace: trace,
        min_soc,
        brownout_s,
        eclipse_fraction: eclipse_steps as f64 / (steps + 1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_geo::Angle;
    use leo_orbit::{KeplerianElements, Propagator};

    fn starlink_propagator() -> Propagator {
        let e =
            KeplerianElements::circular(550e3, Angle::from_degrees(53.0), Angle::ZERO, Angle::ZERO);
        Propagator::new(e, Epoch::J2000)
    }

    fn base_config(server_w: f64, spike_w: f64) -> PowerSimConfig {
        PowerSimConfig {
            // ~1.5 kW orbit average → higher in full sun; the paper's
            // estimate implies roughly 2.4 kW peak array output.
            array_w: 2_400.0,
            battery: Battery::starlink_class(),
            load: LoadProfile {
                bus_w: 1_000.0,
                server_w,
                spike_w,
                spike_period_s: 600.0,
                spike_duration_s: 120.0,
            },
            step_s: 10.0,
            duration_s: 4.0 * 5_739.0, // four orbits
            initial_soc: 0.8,
        }
    }

    fn run(config: &PowerSimConfig) -> PowerSimResult {
        let p = starlink_propagator();
        simulate_power(config, Epoch::J2000, |t| p.position_eci(t).0)
    }

    #[test]
    fn eclipse_fraction_matches_the_closed_form() {
        let r = run(&base_config(0.0, 0.0));
        // β near 0 for this epoch/geometry: expect roughly the 0–0.38
        // band; must be nonzero and below the theoretical max.
        assert!(r.eclipse_fraction > 0.05, "{}", r.eclipse_fraction);
        assert!(r.eclipse_fraction < 0.40, "{}", r.eclipse_fraction);
    }

    #[test]
    fn bus_alone_survives_indefinitely() {
        let r = run(&base_config(0.0, 0.0));
        assert!(r.survives());
        assert!(r.min_soc > 0.3, "min soc {}", r.min_soc);
    }

    #[test]
    fn bus_plus_dl325_survives_with_the_stock_battery() {
        // The paper's tentative conclusion: 15 % average overhead is
        // "quite large" but workable.
        let r = run(&base_config(225.0, 0.0));
        assert!(r.survives(), "brownout {} s", r.brownout_s);
    }

    #[test]
    fn correlated_spikes_cut_into_the_margin() {
        let calm = run(&base_config(225.0, 0.0));
        let spiky = run(&base_config(225.0, 500.0));
        assert!(spiky.min_soc <= calm.min_soc);
    }

    #[test]
    fn an_oversized_load_browns_out() {
        let mut cfg = base_config(2_000.0, 0.0);
        cfg.initial_soc = 0.2;
        let r = run(&cfg);
        assert!(!r.survives());
        assert_eq!(r.min_soc, 0.0);
    }

    #[test]
    fn soc_trace_is_bounded_and_dense() {
        let cfg = base_config(225.0, 300.0);
        let r = run(&cfg);
        assert_eq!(
            r.soc_trace.len(),
            (cfg.duration_s / cfg.step_s).ceil() as usize + 1
        );
        for &(_, soc) in &r.soc_trace {
            assert!((0.0..=1.0).contains(&soc));
        }
    }

    #[test]
    fn larger_battery_never_hurts() {
        let cfg_small = base_config(350.0, 800.0);
        let mut cfg_big = cfg_small;
        cfg_big.battery.capacity_wh *= 2.0;
        let small = run(&cfg_small);
        let big = run(&cfg_big);
        assert!(big.brownout_s <= small.brownout_s);
    }

    #[test]
    fn charging_saturates_at_full_capacity() {
        let mut cfg = base_config(0.0, 0.0);
        cfg.load.bus_w = 10.0; // nearly no load
        cfg.initial_soc = 1.0;
        let r = run(&cfg);
        for &(_, soc) in &r.soc_trace {
            assert!(soc <= 1.0 + 1e-12);
        }
    }
}
