//! The GEO baseline: where geostationary satellites remain the right
//! tool, and where LEO's latency advantage matters.
//!
//! §2 quantifies the trade ("~65× lower latency than GEO orbits"); §6
//! bounds the opportunity: *"for some settings where terrestrial data
//! center infrastructure is limiting, GEO satellites are perfectly
//! acceptable, because latency is not an issue. One such example is
//! video broadcast (…) It is unlikely that serving video through LEO
//! satellites would be worthwhile."*

use leo_geo::consts::{EARTH_RADIUS_MEAN_M, GEO_ALTITUDE_M, SPEED_OF_LIGHT_M_S};
use leo_geo::{Angle, Geodetic};
use serde::{Deserialize, Serialize};

/// A geostationary satellite parked at a longitude.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoSatellite {
    /// Sub-satellite longitude, degrees east.
    pub longitude_deg: f64,
}

impl GeoSatellite {
    /// Slant range to a ground point, meters (law of cosines on the
    /// Earth-center triangle).
    pub fn slant_range_m(&self, ground: Geodetic) -> f64 {
        let r = EARTH_RADIUS_MEAN_M;
        let rs = r + GEO_ALTITUDE_M;
        let dlon = Angle::from_degrees(self.longitude_deg) - ground.lon;
        // Central angle between the ground point and the sub-satellite
        // (equatorial) point.
        let cos_central = ground.lat.cos() * dlon.cos();
        (r * r + rs * rs - 2.0 * r * rs * cos_central).sqrt()
    }

    /// Elevation of the satellite above the ground point's horizon.
    pub fn elevation(&self, ground: Geodetic) -> Angle {
        let r = EARTH_RADIUS_MEAN_M;
        let d = self.slant_range_m(ground);
        let rs = r + GEO_ALTITUDE_M;
        // sin(el) = (rs·cosΨ − r)/d where cosΨ as above.
        let dlon = Angle::from_degrees(self.longitude_deg) - ground.lon;
        let cos_central = ground.lat.cos() * dlon.cos();
        Angle::from_radians(((rs * cos_central - r) / d).asin())
    }

    /// True when visible above `min_elevation`.
    pub fn visible_from(&self, ground: Geodetic, min_elevation: Angle) -> bool {
        self.elevation(ground) >= min_elevation
    }

    /// One-hop (bent-pipe) RTT through this satellite between two ground
    /// points, milliseconds: up from `a`, down to `b`, and back.
    pub fn bent_pipe_rtt_ms(&self, a: Geodetic, b: Geodetic) -> f64 {
        let up = self.slant_range_m(a);
        let down = self.slant_range_m(b);
        2.0 * (up + down) / SPEED_OF_LIGHT_M_S * 1e3
    }

    /// RTT from one ground point to a server *on* the satellite, ms.
    pub fn server_rtt_ms(&self, ground: Geodetic) -> f64 {
        2.0 * self.slant_range_m(ground) / SPEED_OF_LIGHT_M_S * 1e3
    }
}

/// Which platform suits a workload, by latency sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatformChoice {
    /// Latency-insensitive bulk distribution (video broadcast): GEO wins
    /// on coverage-per-satellite and stationarity.
    Geo,
    /// Latency-sensitive interactive compute: LEO wins.
    Leo,
}

/// Picks the platform for a workload with the given RTT budget from a
/// ground point, assuming the best-case (zenith-ish) GEO pass.
pub fn choose_platform(ground: Geodetic, rtt_budget_ms: f64) -> PlatformChoice {
    // Best possible GEO RTT from this latitude (satellite at same
    // longitude).
    let geo = GeoSatellite {
        longitude_deg: ground.lon.degrees(),
    };
    if geo.server_rtt_ms(ground) <= rtt_budget_ms {
        PlatformChoice::Geo
    } else {
        PlatformChoice::Leo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subpoint_rtt_is_about_239_ms() {
        // 2 × 35,786 km / c ≈ 238.7 ms — the textbook GEO number.
        let sat = GeoSatellite { longitude_deg: 0.0 };
        let rtt = sat.server_rtt_ms(Geodetic::ground(0.0, 0.0));
        assert!((rtt - 238.7).abs() < 1.0, "{rtt}");
    }

    #[test]
    fn leo_is_about_65x_lower_latency() {
        // §2: "65× for the 550 km example".
        let sat = GeoSatellite { longitude_deg: 0.0 };
        let geo_rtt = sat.server_rtt_ms(Geodetic::ground(0.0, 0.0));
        let leo_rtt = 2.0 * 550e3 / SPEED_OF_LIGHT_M_S * 1e3;
        let ratio = geo_rtt / leo_rtt;
        assert!((ratio - 65.0).abs() < 1.5, "{ratio}");
    }

    #[test]
    fn slant_range_grows_with_latitude() {
        let sat = GeoSatellite { longitude_deg: 0.0 };
        let eq = sat.slant_range_m(Geodetic::ground(0.0, 0.0));
        let mid = sat.slant_range_m(Geodetic::ground(45.0, 0.0));
        let high = sat.slant_range_m(Geodetic::ground(70.0, 0.0));
        assert!(eq < mid && mid < high);
        assert!((eq - GEO_ALTITUDE_M).abs() < 1e3);
    }

    #[test]
    fn geo_is_invisible_from_the_poles() {
        let sat = GeoSatellite { longitude_deg: 0.0 };
        assert!(!sat.visible_from(Geodetic::ground(85.0, 0.0), Angle::from_degrees(5.0)));
        assert!(sat.visible_from(Geodetic::ground(40.0, 0.0), Angle::from_degrees(5.0)));
    }

    #[test]
    fn elevation_at_subpoint_is_ninety_degrees() {
        let sat = GeoSatellite {
            longitude_deg: 30.0,
        };
        let el = sat.elevation(Geodetic::ground(0.0, 30.0));
        assert!((el.degrees() - 90.0).abs() < 1e-6);
    }

    #[test]
    fn bent_pipe_broadcast_rtt_is_half_a_second_scale() {
        let sat = GeoSatellite {
            longitude_deg: -20.0,
        };
        let rtt = sat.bent_pipe_rtt_ms(
            Geodetic::ground(51.5, -0.13), // London uplink
            Geodetic::ground(6.52, 3.38),  // Lagos viewer
        );
        assert!((450.0..520.0).contains(&rtt), "{rtt}");
    }

    #[test]
    fn video_broadcast_stays_on_geo_interactive_moves_to_leo() {
        // §6's boundary: a 1 s buffering budget is fine on GEO; a 100 ms
        // gaming budget is not.
        let lagos = Geodetic::ground(6.52, 3.38);
        assert_eq!(choose_platform(lagos, 1_000.0), PlatformChoice::Geo);
        assert_eq!(choose_platform(lagos, 100.0), PlatformChoice::Leo);
    }
}
