//! CDN and edge computing (§3.1).
//!
//! The paper's claims:
//! * terrestrial CDN/edge reach is uneven — "in large parts of the world,
//!   CDN edge latencies still exceed 100 ms";
//! * a large LEO constellation puts a satellite-server "within a few
//!   milliseconds from everywhere on Earth";
//! * at full scale (~40,000 satellites), one server per satellite would
//!   be "only 7× smaller than the largest present-day CDN, Akamai".

use leo_core::InOrbitService;
use leo_geo::spherical::great_circle_distance_m;
use leo_geo::Geodetic;
use serde::{Deserialize, Serialize};

/// Speed of light in optical fiber (refractive index ≈ 1.47), m/s.
pub const FIBER_SPEED_M_S: f64 = leo_geo::consts::SPEED_OF_LIGHT_M_S / 1.47;

/// Terrestrial route stretch: real fiber paths are longer than the great
/// circle. 2.0 is a conservative internet-scale average (the paper's
/// "Why is the Internet so slow?!" citation measures worse).
pub const TERRESTRIAL_PATH_STRETCH: f64 = 2.0;

/// Akamai's deployed server count circa 2020 (≈ 325,000 per its public
/// facts page, cited by the paper).
pub const AKAMAI_SERVERS_2020: f64 = 325_000.0;

/// Starlink's full planned scale (§3.1: "40,000 planned satellites").
pub const STARLINK_FULL_SCALE: f64 = 40_000.0;

/// Latency to the nearest terrestrial edge site over fiber, milliseconds
/// (RTT): great-circle distance × stretch at fiber speed.
pub fn terrestrial_edge_rtt_ms(user: Geodetic, sites: &[Geodetic]) -> Option<f64> {
    sites
        .iter()
        .map(|&s| great_circle_distance_m(user, s))
        .min_by(f64::total_cmp)
        .map(|d| 2.0 * d * TERRESTRIAL_PATH_STRETCH / FIBER_SPEED_M_S * 1e3)
}

/// One edge-latency comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeComparison {
    /// RTT to the nearest terrestrial edge site, ms (`None` if no sites).
    pub terrestrial_rtt_ms: Option<f64>,
    /// RTT to the nearest in-orbit server, ms (`None` if unserved).
    pub in_orbit_rtt_ms: Option<f64>,
}

impl EdgeComparison {
    /// True when the in-orbit edge is strictly closer.
    pub fn orbit_wins(&self) -> bool {
        match (self.in_orbit_rtt_ms, self.terrestrial_rtt_ms) {
            (Some(o), Some(t)) => o < t,
            (Some(_), None) => true,
            _ => false,
        }
    }
}

/// Compares edge latency from `user` at time `t`: nearest terrestrial
/// site over fiber vs. nearest reachable satellite-server.
pub fn compare_edge(
    service: &InOrbitService,
    user: Geodetic,
    sites: &[Geodetic],
    t: f64,
) -> EdgeComparison {
    let vis = service.reachable_servers(user, t);
    let in_orbit = vis.iter().map(|v| v.rtt_ms()).min_by(f64::total_cmp);
    EdgeComparison {
        terrestrial_rtt_ms: terrestrial_edge_rtt_ms(user, sites),
        in_orbit_rtt_ms: in_orbit,
    }
}

/// The paper's CDN-scale comparison: how many times smaller a
/// one-server-per-satellite constellation is than Akamai.
pub fn cdn_scale_ratio(constellation_servers: f64) -> f64 {
    AKAMAI_SERVERS_2020 / constellation_servers
}

/// Data-movement comparison against physically shipping a ruggedized
/// edge box (§1: Amazon Snowcone "provides cloud synchronization by
/// shipping it back and forth. In-orbit compute would alleviate the long
/// delays for such data movement, especially from regions with poor
/// transport connectivity").
pub mod data_movement {
    /// Days to ship an edge box one way from a well-connected region.
    pub const SHIPPING_DAYS_CONNECTED: f64 = 3.0;
    /// Days one way from a poorly connected region (the paper's target
    /// setting).
    pub const SHIPPING_DAYS_REMOTE: f64 = 14.0;

    /// Hours to synchronize `bytes` by round-trip shipping.
    pub fn shipping_sync_hours(bytes: f64, one_way_days: f64) -> f64 {
        let _ = bytes; // shipping time is size-independent below ~8 TB
        2.0 * one_way_days * 24.0
    }

    /// Hours to synchronize `bytes` over a satellite uplink of
    /// `uplink_bps`.
    pub fn satellite_sync_hours(bytes: f64, uplink_bps: f64) -> f64 {
        assert!(uplink_bps > 0.0);
        bytes * 8.0 / uplink_bps / 3600.0
    }

    /// The data size (bytes) below which the satellite path wins against
    /// shipping — the "sneakernet crossover".
    pub fn crossover_bytes(uplink_bps: f64, one_way_days: f64) -> f64 {
        shipping_sync_hours(0.0, one_way_days) * 3600.0 * uplink_bps / 8.0
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn snowcone_class_data_prefers_the_satellite() {
            // 8 TB (a Snowcone's capacity) at 100 Mbps up: ~7.4 days of
            // transfer — still faster than 28 days of remote shipping.
            let sat = satellite_sync_hours(8e12, 100e6);
            let ship = shipping_sync_hours(8e12, SHIPPING_DAYS_REMOTE);
            assert!((170.0..190.0).contains(&sat), "{sat} h");
            assert!(sat < ship);
        }

        #[test]
        fn shipping_wins_for_petabytes_from_connected_regions() {
            let sat = satellite_sync_hours(1e15, 100e6);
            let ship = shipping_sync_hours(1e15, SHIPPING_DAYS_CONNECTED);
            assert!(ship < sat);
        }

        #[test]
        fn crossover_matches_the_definition() {
            let x = crossover_bytes(100e6, SHIPPING_DAYS_REMOTE);
            let at_crossover = satellite_sync_hours(x, 100e6);
            let ship = shipping_sync_hours(x, SHIPPING_DAYS_REMOTE);
            assert!((at_crossover - ship).abs() < 1e-9);
            // ~30 TB for 100 Mbps / 14-day shipping.
            assert!((25e12..40e12).contains(&x), "{x}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;

    fn azure_sites() -> Vec<Geodetic> {
        leo_cities::azure_regions()
            .iter()
            .map(|r| r.geodetic())
            .collect()
    }

    #[test]
    fn full_scale_starlink_is_about_7x_smaller_than_akamai() {
        let ratio = cdn_scale_ratio(STARLINK_FULL_SCALE);
        assert!((7.0..9.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn remote_pacific_user_prefers_orbit() {
        // Middle of the South Pacific: thousands of km from any data
        // center, but a satellite overhead.
        let service = InOrbitService::new(presets::starlink_phase1());
        let user = Geodetic::ground(-30.0, -130.0);
        let cmp = compare_edge(&service, user, &azure_sites(), 0.0);
        let terr = cmp.terrestrial_rtt_ms.unwrap();
        assert!(terr > 50.0, "terrestrial {terr} ms");
        assert!(cmp.in_orbit_rtt_ms.unwrap() < 16.0);
        assert!(cmp.orbit_wins());
    }

    #[test]
    fn user_next_to_a_data_center_prefers_ground() {
        let service = InOrbitService::new(presets::starlink_phase1());
        let user = Geodetic::ground(52.4, 4.9); // beside Amsterdam
        let cmp = compare_edge(&service, user, &azure_sites(), 0.0);
        assert!(cmp.terrestrial_rtt_ms.unwrap() < 1.0);
        assert!(!cmp.orbit_wins());
    }

    #[test]
    fn in_orbit_rtt_is_a_few_ms_everywhere_served() {
        // §3.1: "a large LEO constellation can be within a few
        // milliseconds from everywhere on Earth".
        let service = InOrbitService::new(presets::starlink_phase1());
        for (lat, lon) in [(0.0, 0.0), (45.0, 90.0), (-45.0, -60.0), (20.0, -160.0)] {
            let cmp = compare_edge(&service, Geodetic::ground(lat, lon), &[], 0.0);
            let rtt = cmp.in_orbit_rtt_ms.expect("served");
            assert!(rtt < 16.0, "({lat},{lon}): {rtt} ms");
        }
    }

    #[test]
    fn terrestrial_rtt_uses_fiber_speed_and_stretch() {
        // 1,000 km great circle → 2,000 km fiber → RTT = 4,000 km / (c/1.47).
        let user = Geodetic::ground(0.0, 0.0);
        let site = Geodetic::ground(0.0, 8.993); // ≈ 1,000 km along equator
        let rtt = terrestrial_edge_rtt_ms(user, &[site]).unwrap();
        let expect = 4.0e6 / FIBER_SPEED_M_S * 1e3;
        assert!((rtt - expect).abs() < 0.1, "{rtt} vs {expect}");
    }

    #[test]
    fn no_sites_means_no_terrestrial_option() {
        assert_eq!(
            terrestrial_edge_rtt_ms(Geodetic::ground(0.0, 0.0), &[]),
            None
        );
        let c = EdgeComparison {
            terrestrial_rtt_ms: None,
            in_orbit_rtt_ms: Some(5.0),
        };
        assert!(c.orbit_wins());
    }
}
