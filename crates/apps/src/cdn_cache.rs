//! Content caching on satellite-servers with orbital churn.
//!
//! §3.1 proposes in-orbit CDN edges. Unlike a terrestrial PoP, a
//! satellite cache *moves away* every few minutes: the satellite serving
//! a region hands off, and the successor arrives cold unless the hot set
//! is transferred ahead (the same mechanism as §5's state migration,
//! applied to caches). This module quantifies the effect:
//!
//! * a Zipf content catalog (web popularity is Zipf-ish),
//! * an LRU cache per serving satellite,
//! * a region issuing requests to its nearest reachable satellite,
//! * two hand-off policies — **ColdStart** (successor starts empty) and
//!   **WarmHandoff** (successor inherits the hot set over the ISL).
//!
//! Determinism: the request stream is driven by the same SplitMix64
//! generator the city synthesizer uses, so runs are exactly repeatable.

use leo_cities::synth::SplitMix64;
use leo_core::InOrbitService;
use leo_geo::Geodetic;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A Zipf-distributed content catalog.
#[derive(Debug, Clone)]
pub struct ZipfCatalog {
    cdf: Vec<f64>,
}

impl ZipfCatalog {
    /// Creates a catalog of `items` objects with Zipf exponent `s`
    /// (web-like traffic: s ≈ 0.8–1.0).
    ///
    /// # Panics
    /// Panics when `items` is zero or `s` is negative.
    pub fn new(items: usize, s: f64) -> Self {
        assert!(items > 0 && s >= 0.0);
        let mut cdf = Vec::with_capacity(items);
        let mut acc = 0.0;
        for k in 1..=items {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfCatalog { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the catalog is empty (never — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples an item id (0-based rank; 0 = most popular).
    pub fn sample(&self, rng: &mut SplitMix64) -> u32 {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

/// An LRU cache of content ids.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    /// item → logical last-use time.
    last_use: HashMap<u32, u64>,
    clock: u64,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            last_use: HashMap::new(),
            clock: 0,
        }
    }

    /// Number of cached items.
    pub fn len(&self) -> usize {
        self.last_use.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.last_use.is_empty()
    }

    /// Looks an item up, inserting it on a miss (evicting the least
    /// recently used item if full). Returns true on a hit.
    pub fn access(&mut self, item: u32) -> bool {
        self.clock += 1;
        if self.capacity == 0 {
            return false;
        }
        let hit = self.last_use.contains_key(&item);
        if !hit && self.last_use.len() >= self.capacity {
            // Evict the LRU entry.
            if let Some((&victim, _)) = self.last_use.iter().min_by_key(|(_, &t)| t) {
                self.last_use.remove(&victim);
            }
        }
        self.last_use.insert(item, self.clock);
        hit
    }

    /// The cached item set (for warm hand-off), hottest first.
    pub fn hot_set(&self) -> Vec<u32> {
        let mut items: Vec<(u32, u64)> = self.last_use.iter().map(|(&i, &t)| (i, t)).collect();
        items.sort_by_key(|&(_, t)| std::cmp::Reverse(t));
        items.into_iter().map(|(i, _)| i).collect()
    }

    /// Pre-populates the cache with `items` (hottest first, truncated to
    /// capacity).
    pub fn warm_with(&mut self, items: &[u32]) {
        for &i in items.iter().take(self.capacity).rev() {
            self.access(i);
        }
    }
}

/// Hand-off policy for the serving satellite's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheHandoffPolicy {
    /// The successor starts with an empty cache.
    ColdStart,
    /// The hot set is transferred to the successor ahead of the hand-off
    /// (§5-style migration applied to the cache).
    WarmHandoff,
}

/// Configuration of a CDN cache simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdnSimConfig {
    /// Content catalog size.
    pub catalog_items: usize,
    /// Zipf exponent.
    pub zipf_exponent: f64,
    /// Cache capacity per satellite, items.
    pub cache_items: usize,
    /// Requests per second from the region.
    pub request_rate_hz: f64,
    /// Simulation length, seconds.
    pub duration_s: f64,
    /// Hand-off policy.
    pub policy: CacheHandoffPolicy,
    /// RNG seed.
    pub seed: u64,
}

/// Result of a CDN cache simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdnSimResult {
    /// Total requests issued.
    pub requests: u64,
    /// Cache hits.
    pub hits: u64,
    /// Serving-satellite hand-offs observed.
    pub handoffs: u32,
}

impl CdnSimResult {
    /// Overall hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Simulates a region's content requests against the nearest reachable
/// satellite's cache, with the configured hand-off policy.
pub fn simulate_cdn(
    service: &InOrbitService,
    region: Geodetic,
    config: &CdnSimConfig,
) -> CdnSimResult {
    assert!(config.request_rate_hz > 0.0 && config.duration_s > 0.0);
    let catalog = ZipfCatalog::new(config.catalog_items, config.zipf_exponent);
    let mut rng = SplitMix64::new(config.seed);
    let mut cache = LruCache::new(config.cache_items);
    let mut current_sat = None;
    let mut result = CdnSimResult {
        requests: 0,
        hits: 0,
        handoffs: 0,
    };

    // Re-evaluate the serving satellite once per second; issue requests
    // at the configured rate between evaluations.
    let seconds = config.duration_s.ceil() as usize;
    let mut request_accumulator = 0.0;
    for sec in 0..seconds {
        let t = sec as f64;
        let nearest = service
            .reachable_servers(region, t)
            .into_iter()
            .min_by(|a, b| a.range_m.total_cmp(&b.range_m))
            .map(|v| v.id);
        if nearest != current_sat {
            if current_sat.is_some() {
                result.handoffs += 1;
                match config.policy {
                    CacheHandoffPolicy::ColdStart => {
                        cache = LruCache::new(config.cache_items);
                    }
                    CacheHandoffPolicy::WarmHandoff => {
                        let hot = cache.hot_set();
                        cache = LruCache::new(config.cache_items);
                        cache.warm_with(&hot);
                    }
                }
            }
            current_sat = nearest;
        }
        if current_sat.is_none() {
            continue; // region unserved this second
        }
        request_accumulator += config.request_rate_hz;
        while request_accumulator >= 1.0 {
            request_accumulator -= 1.0;
            let item = catalog.sample(&mut rng);
            result.requests += 1;
            if cache.access(item) {
                result.hits += 1;
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        let z = ZipfCatalog::new(1000, 0.9);
        assert_eq!(z.len(), 1000);
        let mut prev = 0.0;
        for &c in &z.cdf {
            assert!(c >= prev);
            prev = c;
        }
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_samples_favor_low_ranks() {
        let z = ZipfCatalog::new(1000, 1.0);
        let mut rng = SplitMix64::new(1);
        let mut top10 = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        // With s=1, the top-10 of 1000 items carries ~39 % of requests.
        let share = top10 as f64 / n as f64;
        assert!((0.3..0.5).contains(&share), "top-10 share {share}");
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut c = LruCache::new(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1)); // 1 is now most recent
        assert!(!c.access(3)); // evicts 2
        assert!(c.access(1));
        assert!(!c.access(2)); // 2 was evicted
    }

    #[test]
    fn zero_capacity_cache_never_hits() {
        let mut c = LruCache::new(0);
        assert!(!c.access(1));
        assert!(!c.access(1));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn hot_set_round_trips_through_warm_with() {
        let mut a = LruCache::new(4);
        for i in [1, 2, 3, 4] {
            a.access(i);
        }
        let hot = a.hot_set();
        assert_eq!(hot[0], 4, "most recent first");
        let mut b = LruCache::new(4);
        b.warm_with(&hot);
        for i in [1, 2, 3, 4] {
            assert!(b.access(i), "item {i} should be warm");
        }
    }

    fn config(policy: CacheHandoffPolicy) -> CdnSimConfig {
        CdnSimConfig {
            catalog_items: 10_000,
            zipf_exponent: 0.9,
            cache_items: 1_000,
            request_rate_hz: 50.0,
            duration_s: 1_200.0,
            policy,
            seed: 42,
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let region = Geodetic::ground(6.52, 3.38);
        let a = simulate_cdn(&service, region, &config(CacheHandoffPolicy::ColdStart));
        let b = simulate_cdn(&service, region, &config(CacheHandoffPolicy::ColdStart));
        assert_eq!(a, b);
    }

    #[test]
    fn warm_handoff_beats_cold_start() {
        // The §5 mechanism applied to caches: transferring the hot set
        // preserves hit rate across satellite churn.
        let service = InOrbitService::new(presets::starlink_550_only());
        let region = Geodetic::ground(6.52, 3.38);
        let cold = simulate_cdn(&service, region, &config(CacheHandoffPolicy::ColdStart));
        let warm = simulate_cdn(&service, region, &config(CacheHandoffPolicy::WarmHandoff));
        assert!(
            cold.handoffs >= 1,
            "need churn to compare, got {}",
            cold.handoffs
        );
        assert!(
            warm.hit_rate() > cold.hit_rate(),
            "warm {} vs cold {}",
            warm.hit_rate(),
            cold.hit_rate()
        );
        assert!(warm.hit_rate() > 0.3, "warm hit rate {}", warm.hit_rate());
    }

    #[test]
    fn bigger_caches_hit_more() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let region = Geodetic::ground(6.52, 3.38);
        let mut small_cfg = config(CacheHandoffPolicy::WarmHandoff);
        small_cfg.cache_items = 100;
        let mut big_cfg = small_cfg;
        big_cfg.cache_items = 2_000;
        let small = simulate_cdn(&service, region, &small_cfg);
        let big = simulate_cdn(&service, region, &big_cfg);
        assert!(big.hit_rate() > small.hit_rate());
    }

    #[test]
    fn unserved_region_issues_no_requests() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let polar = Geodetic::ground(89.0, 0.0);
        let r = simulate_cdn(&service, polar, &config(CacheHandoffPolicy::ColdStart));
        assert_eq!(r.requests, 0);
        assert_eq!(r.hit_rate(), 0.0);
    }
}
