//! Processing space-native data (§3.3) and the "invisible satellites"
//! analysis (Figs 4–5).
//!
//! Two models live here:
//!
//! 1. **Invisible satellites** — at a snapshot, how many satellites are
//!    not directly reachable from any of the largest *n* population
//!    centers. The paper finds >⅓ of Starlink and >½ of Kuiper invisible
//!    even with ground stations at 1,000 cities.
//! 2. **Sensing pipeline** — an Earth-observation satellite produces data
//!    faster than it can downlink; in-orbit pre-processing (and
//!    cooperative processing over ISLs) raises the achievable sensing
//!    duty cycle and cuts downlink volume.

use leo_core::InOrbitService;
use leo_geo::{Ecef, Geodetic};
use serde::{Deserialize, Serialize};

/// Result of the invisible-satellite count for one ground-station set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvisibleReport {
    /// Number of ground sites used.
    pub num_sites: usize,
    /// Total satellites in the constellation.
    pub total_sats: usize,
    /// Satellites invisible from every site.
    pub invisible: usize,
}

impl InvisibleReport {
    /// Invisible fraction of the constellation.
    pub fn fraction(&self) -> f64 {
        self.invisible as f64 / self.total_sats as f64
    }
}

/// Counts satellites invisible from all of `sites` at time `t`, through
/// the service's cached snapshot view and its spatial index.
pub fn invisible_count(service: &InOrbitService, sites: &[Geodetic], t: f64) -> InvisibleReport {
    let _span = leo_obs::span!("apps.spacenative.coverage_s");
    leo_obs::counter!("apps.spacenative.coverage_sites").add(sites.len() as u64);
    let view = service.view(t);
    let grounds: Vec<Ecef> = sites.iter().map(|g| g.to_ecef_spherical()).collect();
    let mask = view.index().coverage_mask(&grounds);
    let invisible = mask.iter().filter(|&&v| !v).count();
    InvisibleReport {
        num_sites: sites.len(),
        total_sats: mask.len(),
        invisible,
    }
}

/// [`InvisibleReport`]s for a *growing* ground-station set: one report
/// per prefix length in `prefix_sizes` (ascending) of `sites`. The
/// coverage mask is extended incrementally — each site's visibility is
/// computed exactly once however many prefixes it appears in — which is
/// what makes Fig 4's 100..=1000-city sweep cheap.
///
/// # Panics
/// Panics when `prefix_sizes` is not ascending or a size exceeds
/// `sites.len()`.
pub fn invisible_series(
    service: &InOrbitService,
    sites: &[Geodetic],
    t: f64,
    prefix_sizes: &[usize],
) -> Vec<InvisibleReport> {
    let _span = leo_obs::span!("apps.spacenative.coverage_s");
    let view = service.view(t);
    let total_sats = view.index().num_satellites();
    let mut mask = vec![false; total_sats];
    let mut covered = 0usize;
    let mut reports = Vec::with_capacity(prefix_sizes.len());
    for &n in prefix_sizes {
        assert!(covered <= n && n <= sites.len(), "prefix sizes must ascend");
        let grounds: Vec<Ecef> = sites[covered..n]
            .iter()
            .map(|g| g.to_ecef_spherical())
            .collect();
        // Sites are counted as they are *covered*, not per prefix, so the
        // total matches the incremental work actually done.
        leo_obs::counter!("apps.spacenative.coverage_sites").add(grounds.len() as u64);
        view.index().mark_coverage(&grounds, &mut mask);
        covered = n;
        reports.push(InvisibleReport {
            num_sites: n,
            total_sats,
            invisible: mask.iter().filter(|&&v| !v).count(),
        });
    }
    reports
}

/// Geodetic subpoints of the invisible satellites at time `t` — the data
/// behind Fig 5's map. Shares the cached snapshot view (and therefore
/// the propagation) with [`invisible_count`] at the same instant.
pub fn invisible_positions(service: &InOrbitService, sites: &[Geodetic], t: f64) -> Vec<Geodetic> {
    let _span = leo_obs::span!("apps.spacenative.coverage_s");
    leo_obs::counter!("apps.spacenative.coverage_sites").add(sites.len() as u64);
    let view = service.view(t);
    let grounds: Vec<Ecef> = sites.iter().map(|g| g.to_ecef_spherical()).collect();
    let mask = view.index().coverage_mask(&grounds);
    view.snapshot()
        .iter()
        .filter(|(id, _)| !mask[id.0 as usize])
        .map(|(_, pos)| pos.to_geodetic_spherical())
        .collect()
}

/// An Earth-observation sensing pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensingPipeline {
    /// Raw sensor data production rate while sensing, bits/s (the paper
    /// cites "multi-Gbps data production").
    pub sensor_rate_bps: f64,
    /// Downlink rate available for sensing data, bits/s (the paper notes
    /// ~10 Gbps links shared with the network service).
    pub downlink_rate_bps: f64,
    /// In-orbit pre-processing data reduction factor ≥ 1 (output =
    /// input / factor). 1 = no processing. §3.3: "the amount of actually
    /// interesting or actionable data is often a minute fraction of the
    /// data gathered".
    pub reduction_factor: f64,
}

impl SensingPipeline {
    /// Fraction of time the satellite can sense, bounded by draining the
    /// (possibly reduced) data through the downlink: duty ≤ D·k / R.
    pub fn sensing_duty_cycle(&self) -> f64 {
        assert!(self.reduction_factor >= 1.0, "reduction must be ≥ 1");
        (self.downlink_rate_bps * self.reduction_factor / self.sensor_rate_bps).min(1.0)
    }

    /// Downlink volume per sensing-second, bits (after reduction).
    pub fn downlink_bits_per_sensing_s(&self) -> f64 {
        self.sensor_rate_bps / self.reduction_factor
    }

    /// Daily sensed data volume, bits, given the duty cycle.
    pub fn daily_sensed_bits(&self) -> f64 {
        self.sensor_rate_bps * self.sensing_duty_cycle() * 86_400.0
    }

    /// How much in-orbit processing multiplies sensing time relative to
    /// the unprocessed pipeline (capped by reaching 100 % duty).
    pub fn sensing_gain(&self) -> f64 {
        let raw = SensingPipeline {
            reduction_factor: 1.0,
            ..*self
        };
        self.sensing_duty_cycle() / raw.sensing_duty_cycle()
    }
}

/// Cooperative processing: offloading a sensing backlog to `helpers` idle
/// neighbor satellites over ISLs. Returns the makespan (seconds) of
/// processing `backlog_bits` when each satellite computes at
/// `compute_bps` and the backlog must first be spread over ISLs of rate
/// `isl_rate_bps` (one hop, store-and-forward; distribution and local
/// compute overlap is ignored — this is the paper's bulk-processing
/// regime where "milliseconds … should still be sufficient").
pub fn cooperative_makespan_s(
    backlog_bits: f64,
    compute_bps: f64,
    isl_rate_bps: f64,
    helpers: usize,
) -> f64 {
    assert!(backlog_bits >= 0.0 && compute_bps > 0.0 && isl_rate_bps > 0.0);
    let n = helpers as f64 + 1.0; // self plus helpers
    let share = backlog_bits / n;
    // Ship each helper's share sequentially over the local ISLs, then all
    // compute in parallel.
    let distribution = (backlog_bits - share) / isl_rate_bps;
    distribution + share / compute_bps
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_cities::WorldCities;
    use leo_constellation::presets;

    #[test]
    fn over_a_third_of_starlink_is_invisible_from_1000_cities() {
        // Fig 4: "more than a third of Starlink's … satellites are
        // 'invisible' in this manner at any time".
        let service = InOrbitService::new(presets::starlink_phase1());
        let cities = WorldCities::load_at_least(1000).top_n_geodetic(1000);
        let r = invisible_count(&service, &cities, 0.0);
        assert_eq!(r.total_sats, 4409);
        assert!(
            r.fraction() > 0.33,
            "invisible fraction {} (paper: >1/3)",
            r.fraction()
        );
        assert!(r.fraction() < 0.75, "implausibly high {}", r.fraction());
    }

    #[test]
    fn over_half_of_kuiper_is_invisible_from_1000_cities() {
        // Fig 4: "more than a half of Kuiper's satellites".
        let service = InOrbitService::new(presets::kuiper());
        let cities = WorldCities::load_at_least(1000).top_n_geodetic(1000);
        let r = invisible_count(&service, &cities, 0.0);
        assert!(
            r.fraction() > 0.5,
            "invisible fraction {} (paper: >1/2)",
            r.fraction()
        );
    }

    #[test]
    fn more_cities_means_fewer_invisible_satellites() {
        let service = InOrbitService::new(presets::kuiper());
        let ds = WorldCities::load_at_least(1000);
        let r100 = invisible_count(&service, &ds.top_n_geodetic(100), 0.0);
        let r1000 = invisible_count(&service, &ds.top_n_geodetic(1000), 0.0);
        assert!(r1000.invisible < r100.invisible);
    }

    #[test]
    fn invisible_series_matches_pointwise_counts() {
        let service = InOrbitService::new(presets::kuiper());
        let sites = WorldCities::load_at_least(400).top_n_geodetic(400);
        let series = invisible_series(&service, &sites, 0.0, &[100, 250, 400]);
        assert_eq!(series.len(), 3);
        for r in &series {
            let direct = invisible_count(&service, &sites[..r.num_sites], 0.0);
            assert_eq!(r.invisible, direct.invisible, "at {} sites", r.num_sites);
            assert_eq!(r.total_sats, direct.total_sats);
        }
    }

    #[test]
    #[should_panic(expected = "prefix sizes must ascend")]
    fn invisible_series_rejects_descending_prefixes() {
        let service = InOrbitService::new(presets::kuiper());
        let sites = WorldCities::load().top_n_geodetic(50);
        invisible_series(&service, &sites, 0.0, &[50, 10]);
    }

    #[test]
    fn invisible_positions_match_the_count() {
        let service = InOrbitService::new(presets::kuiper());
        let cities = WorldCities::load().top_n_geodetic(200);
        let r = invisible_count(&service, &cities, 0.0);
        let pos = invisible_positions(&service, &cities, 0.0);
        assert_eq!(pos.len(), r.invisible);
    }

    #[test]
    fn invisible_starlink_satellites_skew_south() {
        // Fig 5: "the vast majority of invisible satellites are the ones
        // South of most of the World's population".
        let service = InOrbitService::new(presets::starlink_phase1());
        let cities = WorldCities::load_at_least(1000).top_n_geodetic(1000);
        let pos = invisible_positions(&service, &cities, 0.0);
        let south = pos.iter().filter(|p| p.lat.degrees() < 0.0).count();
        assert!(
            south * 2 > pos.len(),
            "south {} of {} — expected southern skew",
            south,
            pos.len()
        );
    }

    #[test]
    fn sensing_duty_cycle_is_downlink_bound_without_processing() {
        // 8 Gbps sensor, 2 Gbps downlink share: 25 % duty cycle raw.
        let p = SensingPipeline {
            sensor_rate_bps: 8e9,
            downlink_rate_bps: 2e9,
            reduction_factor: 1.0,
        };
        assert!((p.sensing_duty_cycle() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn preprocessing_multiplies_sensing_time_up_to_saturation() {
        let mut p = SensingPipeline {
            sensor_rate_bps: 8e9,
            downlink_rate_bps: 2e9,
            reduction_factor: 2.0,
        };
        assert!((p.sensing_duty_cycle() - 0.5).abs() < 1e-12);
        assert!((p.sensing_gain() - 2.0).abs() < 1e-12);
        // ×10 reduction saturates at 100 % duty (gain capped at 4).
        p.reduction_factor = 10.0;
        assert_eq!(p.sensing_duty_cycle(), 1.0);
        assert!((p.sensing_gain() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn preprocessing_cuts_downlink_volume_proportionally() {
        let p = SensingPipeline {
            sensor_rate_bps: 8e9,
            downlink_rate_bps: 2e9,
            reduction_factor: 16.0,
        };
        assert!((p.downlink_bits_per_sensing_s() - 0.5e9).abs() < 1e-3);
    }

    #[test]
    fn cooperative_processing_beats_solo_for_large_backlogs() {
        // 1 Tbit backlog, 10 Gbps of compute per satellite, 100 Gbps ISLs.
        let solo = cooperative_makespan_s(1e12, 1e10, 1e11, 0);
        let coop = cooperative_makespan_s(1e12, 1e10, 1e11, 9);
        assert!((solo - 100.0).abs() < 1e-9);
        assert!(coop < solo / 2.0, "coop {coop} vs solo {solo}");
    }

    #[test]
    fn slow_isls_erase_the_cooperative_benefit() {
        // When shipping costs as much as computing, helpers don't pay off.
        let solo = cooperative_makespan_s(1e12, 1e10, 1e9, 0);
        let coop = cooperative_makespan_s(1e12, 1e10, 1e9, 9);
        assert!(coop > solo, "coop {coop} vs solo {solo}");
    }
}
