//! Matchmaking: which user groups *can* play together?
//!
//! §3.2: *"Today, these problems are side-stepped by restrictions on
//! which users can participate together, e.g., by matchmaking in online
//! games, which typically accounts for player latencies to the game
//! server. This is, of course, limiting, as it prevents certain sets of
//! users from participating with their friends. With in-orbit computing,
//! this limitation can be overcome."*
//!
//! This module quantifies the claim: given a population of players and
//! an application latency budget, compare the set of *feasible groups*
//! under (a) terrestrial servers only, and (b) in-orbit meetup servers.

use crate::interactive::AppClass;
use leo_core::{GroupDelays, InOrbitService};
use leo_geo::spherical::great_circle_distance_m;
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;
use serde::{Deserialize, Serialize};

/// A player in the matchmaking population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Player {
    /// Display name.
    pub name: String,
    /// Location.
    pub location: Geodetic,
}

impl Player {
    /// Creates a player.
    pub fn new(name: &str, lat_deg: f64, lon_deg: f64) -> Self {
        Player {
            name: name.to_string(),
            location: Geodetic::ground(lat_deg, lon_deg),
        }
    }
}

/// Where a group's meetup server could run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Feasibility {
    /// A terrestrial server meets the budget (in-orbit unnecessary).
    Terrestrial,
    /// Only an in-orbit server meets the budget.
    OrbitOnly,
    /// Neither option meets the budget.
    Infeasible,
}

/// Best terrestrial option for a group: the minimum over candidate sites
/// of the worst player RTT, over fiber at the standard path stretch.
pub fn best_terrestrial_rtt_ms(players: &[&Player], sites: &[Geodetic]) -> Option<f64> {
    sites
        .iter()
        .map(|&site| {
            players
                .iter()
                .map(|p| {
                    2.0 * great_circle_distance_m(p.location, site)
                        * crate::edge::TERRESTRIAL_PATH_STRETCH
                        / crate::edge::FIBER_SPEED_M_S
                        * 1e3
                })
                .fold(0.0f64, f64::max)
        })
        .min_by(f64::total_cmp)
}

/// Best in-orbit option for a group at time `t` (direct model), ms.
pub fn best_orbit_rtt_ms(service: &InOrbitService, players: &[&Player], t: f64) -> Option<f64> {
    let endpoints: Vec<GroundEndpoint> = players
        .iter()
        .enumerate()
        .map(|(i, p)| GroundEndpoint::new(i as u32, p.location))
        .collect();
    let delays = GroupDelays::direct(service, &endpoints, t);
    delays.minmax().map(|(_, d)| 2.0 * d * 1e3)
}

/// Classifies one group under an application class's latency budget.
pub fn classify_group(
    service: &InOrbitService,
    players: &[&Player],
    sites: &[Geodetic],
    class: AppClass,
    t: f64,
) -> Feasibility {
    let budget = class.max_rtt_ms();
    if best_terrestrial_rtt_ms(players, sites).is_some_and(|r| r <= budget) {
        return Feasibility::Terrestrial;
    }
    if best_orbit_rtt_ms(service, players, t).is_some_and(|r| r <= budget) {
        return Feasibility::OrbitOnly;
    }
    Feasibility::Infeasible
}

/// Matchmaking census: classify every pair in a population.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Census {
    /// Pairs servable terrestrially.
    pub terrestrial: usize,
    /// Pairs only servable in orbit — the communities in-orbit compute
    /// *adds*.
    pub orbit_only: usize,
    /// Pairs nobody can serve under the budget.
    pub infeasible: usize,
}

impl Census {
    /// Total pairs classified.
    pub fn total(&self) -> usize {
        self.terrestrial + self.orbit_only + self.infeasible
    }

    /// Relative increase in feasible pairs from adding in-orbit compute.
    pub fn orbit_gain(&self) -> f64 {
        if self.terrestrial == 0 {
            if self.orbit_only == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.orbit_only as f64 / self.terrestrial as f64
        }
    }
}

/// Classifies all pairs of `players`.
pub fn pairwise_census(
    service: &InOrbitService,
    players: &[Player],
    sites: &[Geodetic],
    class: AppClass,
    t: f64,
) -> Census {
    let mut census = Census::default();
    for i in 0..players.len() {
        for j in i + 1..players.len() {
            let group = [&players[i], &players[j]];
            match classify_group(service, &group, sites, class, t) {
                Feasibility::Terrestrial => census.terrestrial += 1,
                Feasibility::OrbitOnly => census.orbit_only += 1,
                Feasibility::Infeasible => census.infeasible += 1,
            }
        }
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;

    fn service() -> InOrbitService {
        InOrbitService::new(presets::starlink_phase1())
    }

    fn azure_sites() -> Vec<Geodetic> {
        leo_cities::azure_regions()
            .iter()
            .map(|r| r.geodetic())
            .collect()
    }

    #[test]
    fn colocated_players_next_to_a_dc_stay_terrestrial() {
        let s = service();
        let a = Player::new("a", 52.4, 4.9);
        let b = Player::new("b", 52.3, 5.0);
        let f = classify_group(&s, &[&a, &b], &azure_sites(), AppClass::Gaming, 0.0);
        assert_eq!(f, Feasibility::Terrestrial);
    }

    #[test]
    fn west_african_pair_needs_orbit_for_arvr() {
        // Abuja + Yaoundé: nearest DCs are in South Africa/Europe — far
        // beyond the 50 ms AR budget terrestrially, fine in orbit.
        let s = service();
        let a = Player::new("abuja", 9.06, 7.49);
        let b = Player::new("yaounde", 3.87, 11.52);
        let f = classify_group(&s, &[&a, &b], &azure_sites(), AppClass::ArVr, 0.0);
        assert_eq!(f, Feasibility::OrbitOnly);
    }

    #[test]
    fn antipodal_pair_is_infeasible_for_haptics() {
        // Physics: ~134 ms RTT floor between antipodes beats any server.
        let s = service();
        let a = Player::new("zurich", 47.38, 8.54);
        let b = Player::new("auckland", -36.85, 174.76);
        let f = classify_group(&s, &[&a, &b], &azure_sites(), AppClass::Haptic, 0.0);
        assert_eq!(f, Feasibility::Infeasible);
    }

    #[test]
    fn terrestrial_rtt_uses_the_best_site() {
        let a = Player::new("a", 0.0, 0.0);
        let b = Player::new("b", 1.0, 1.0);
        let near = Geodetic::ground(0.5, 0.5);
        let far = Geodetic::ground(50.0, 100.0);
        let best = best_terrestrial_rtt_ms(&[&a, &b], &[far, near]).unwrap();
        let only_far = best_terrestrial_rtt_ms(&[&a, &b], &[far]).unwrap();
        assert!(best < only_far);
    }

    #[test]
    fn no_sites_means_no_terrestrial_option() {
        let a = Player::new("a", 0.0, 0.0);
        assert_eq!(best_terrestrial_rtt_ms(&[&a], &[]), None);
    }

    #[test]
    fn census_counts_add_up_and_orbit_expands_matchmaking() {
        // A population straddling the coverage gap between African DCs:
        // orbit must unlock extra pairs for AR-class budgets.
        let s = service();
        let players = vec![
            Player::new("lagos", 6.52, 3.38),
            Player::new("abuja", 9.06, 7.49),
            Player::new("yaounde", 3.87, 11.52),
            Player::new("accra", 5.60, -0.19),
            Player::new("johannesburg", -26.20, 28.04),
            Player::new("cape town", -33.92, 18.42),
        ];
        let census = pairwise_census(&s, &players, &azure_sites(), AppClass::ArVr, 0.0);
        assert_eq!(census.total(), 15);
        assert!(census.orbit_only > 0, "orbit adds nothing?");
        assert!(census.terrestrial > 0, "SA pair should be terrestrial");
        assert!(census.orbit_gain() > 0.0);
    }

    #[test]
    fn empty_census_gain_is_zero() {
        assert_eq!(Census::default().orbit_gain(), 0.0);
    }
}
