//! # leo-apps
//!
//! Application models for the three use-case families of §3:
//!
//! * [`edge`] — CDN and edge computing (§3.1): terrestrial CDN latency vs
//!   in-orbit edge latency from arbitrary ground locations, and the
//!   CDN-scale comparison ("Starlink at full scale would be only 7×
//!   smaller than Akamai").
//! * [`interactive`] — multi-user interaction (§3.2): QoE thresholds for
//!   gaming / AR / haptics, per-user latency fairness, and session QoE
//!   scoring on top of `leo-core` sessions.
//! * [`spacenative`] — processing space-native data (§3.3): the
//!   "invisible satellites" analysis behind Figs 4–5, and the
//!   sensing-vs-downlink pipeline model showing how in-orbit
//!   pre-processing raises sensing duty cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdn_cache;
pub mod edge;
pub mod geo_baseline;
pub mod interactive;
pub mod matchmaking;
pub mod spacenative;
