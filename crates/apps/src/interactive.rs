//! Multi-user interactive applications (§3.2): QoE thresholds and
//! latency fairness.
//!
//! The paper argues two latency properties matter for "meetup server"
//! workloads: the group's worst-case latency must clear an
//! application-specific threshold, and — for competitive settings —
//! per-user latencies should be *uniform* ("no user has a significant
//! disadvantage compared to others").

use leo_core::session::SessionResult;
use leo_core::InOrbitService;
use leo_net::routing::GroundEndpoint;
use serde::{Deserialize, Serialize};

/// Latency requirements for interactive application classes (RTT, ms).
/// Bands follow the paper's citations: first-person gaming degrades
/// beyond ~100 ms; AR/VR co-immersion needs small tens of ms; haptic
/// "Tactile Internet" loops need ~25 ms or less end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppClass {
    /// First-person / competitive online gaming.
    Gaming,
    /// Augmented/virtual reality co-immersion.
    ArVr,
    /// Real-time haptic feedback (tactile internet).
    Haptic,
    /// Collaborative music performance (ensemble latency tolerance).
    Music,
}

impl AppClass {
    /// Maximum acceptable group RTT, milliseconds.
    pub fn max_rtt_ms(self) -> f64 {
        match self {
            AppClass::Gaming => 100.0,
            AppClass::ArVr => 50.0,
            AppClass::Haptic => 25.0,
            AppClass::Music => 30.0,
        }
    }

    /// All classes, for sweeps.
    pub fn all() -> [AppClass; 4] {
        [
            AppClass::Gaming,
            AppClass::ArVr,
            AppClass::Haptic,
            AppClass::Music,
        ]
    }
}

/// Per-user latency spread to a chosen server at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Each user's RTT to the server, ms, in user order.
    pub user_rtts_ms: Vec<f64>,
    /// max − min spread, ms (the competitive-disadvantage measure).
    pub spread_ms: f64,
}

/// Computes per-user RTTs and their spread to the satellite currently
/// optimal for the group.
pub fn fairness_at(
    service: &InOrbitService,
    users: &[GroundEndpoint],
    t: f64,
) -> Option<FairnessReport> {
    leo_obs::counter!("apps.interactive.fairness_evals").incr();
    let view = service.view(t);
    let per_user = service.user_delays_view(&view, users);
    let group = leo_core::GroupDelays::from_user_delays(&per_user);
    let (sat, _) = group.minmax()?;
    let user_rtts_ms: Vec<f64> = per_user
        .iter()
        .map(|v| 2.0 * v[sat.0 as usize] * 1e3)
        .collect();
    let max = user_rtts_ms.iter().copied().fold(f64::MIN, f64::max);
    let min = user_rtts_ms.iter().copied().fold(f64::MAX, f64::min);
    Some(FairnessReport {
        user_rtts_ms,
        spread_ms: max - min,
    })
}

/// Latency-fairness trace over a whole session: the max−min per-user
/// RTT spread at each sample time, to the *group-optimal* server of that
/// instant. The paper's competitive-fairness requirement (§3.2) is that
/// this spread stays small throughout, not just at one instant.
///
/// Samples are independent, so the sweep engine fans them across the
/// worker pool (snapshots propagate once into the service's cache); the
/// trace comes back in time order regardless of thread count.
pub fn fairness_over_session(
    service: &InOrbitService,
    users: &[GroundEndpoint],
    start_s: f64,
    duration_s: f64,
    step_s: f64,
) -> Vec<(f64, f64)> {
    assert!(step_s > 0.0 && duration_s > 0.0);
    let _span = leo_obs::span!("apps.interactive.fairness_session_s");
    let steps = (duration_s / step_s).round() as usize;
    let times: Vec<f64> = (0..=steps).map(|i| start_s + i as f64 * step_s).collect();
    leo_sim::parallel_map(times, leo_sim::default_threads(), |&t| {
        fairness_at(service, users, t).map(|rep| (t, rep.spread_ms))
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Fraction of session time the group RTT met an application class's
/// requirement.
pub fn qoe_fraction(session: &SessionResult, class: AppClass) -> f64 {
    if session.rtt_samples.is_empty() {
        return 0.0;
    }
    let ok = session
        .rtt_samples
        .iter()
        .filter(|&&(_, rtt)| rtt <= class.max_rtt_ms())
        .count();
    ok as f64 / session.rtt_samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;
    use leo_core::{Policy, SessionConfig};
    use leo_geo::Geodetic;

    fn west_africa() -> Vec<GroundEndpoint> {
        vec![
            GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
            GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
            GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)),
        ]
    }

    #[test]
    fn thresholds_are_ordered_by_strictness() {
        assert!(AppClass::Haptic.max_rtt_ms() < AppClass::ArVr.max_rtt_ms());
        assert!(AppClass::ArVr.max_rtt_ms() < AppClass::Gaming.max_rtt_ms());
    }

    #[test]
    fn west_africa_meets_even_the_haptic_budget_in_orbit() {
        // §3.2's argument: in-orbit meetup servers unlock latency classes
        // terrestrial servers cannot reach for this group (46 ms hybrid
        // fails AR/haptics; the in-orbit server meets them).
        let service = InOrbitService::new(presets::starlink_550_only());
        let cfg = SessionConfig {
            start_s: 0.0,
            duration_s: 300.0,
            tick_s: 10.0,
        };
        let r = leo_core::session::run_session(&service, &west_africa(), Policy::MinMax, &cfg);
        assert!(qoe_fraction(&r, AppClass::Haptic) > 0.9);
        assert!(qoe_fraction(&r, AppClass::Gaming) == 1.0);
    }

    #[test]
    fn fairness_spread_is_small_for_a_compact_group() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let rep = fairness_at(&service, &west_africa(), 0.0).expect("served");
        assert_eq!(rep.user_rtts_ms.len(), 3);
        // Users within ~1,000 km of each other: spread stays low.
        assert!(rep.spread_ms < 8.0, "spread {}", rep.spread_ms);
    }

    #[test]
    fn fairness_rtts_are_consistent_with_spread() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let rep = fairness_at(&service, &west_africa(), 120.0).unwrap();
        let max = rep.user_rtts_ms.iter().copied().fold(f64::MIN, f64::max);
        let min = rep.user_rtts_ms.iter().copied().fold(f64::MAX, f64::min);
        assert!((rep.spread_ms - (max - min)).abs() < 1e-12);
    }

    #[test]
    fn fairness_stays_small_over_a_whole_session() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let trace = fairness_over_session(&service, &west_africa(), 0.0, 600.0, 60.0);
        assert!(trace.len() >= 10);
        for &(t, spread) in &trace {
            assert!(spread >= 0.0);
            assert!(spread < 10.0, "t={t}: spread {spread} ms");
        }
    }

    #[test]
    fn fairness_trace_skips_unserved_instants() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let arctic = vec![GroundEndpoint::new(0, Geodetic::ground(86.0, 0.0))];
        let trace = fairness_over_session(&service, &arctic, 0.0, 300.0, 60.0);
        assert!(trace.is_empty());
    }

    #[test]
    fn qoe_of_empty_session_is_zero() {
        let r = SessionResult {
            policy: Policy::MinMax,
            events: vec![],
            rtt_samples: vec![],
            end_s: 0.0,
        };
        assert_eq!(qoe_fraction(&r, AppClass::Gaming), 0.0);
    }
}
