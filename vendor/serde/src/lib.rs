//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach a crate registry, so this vendored
//! facade provides the subset of serde's API the workspace uses: the
//! `Serialize`/`Deserialize` traits (with derive macros from the sibling
//! `serde_derive` stub) and `serde::de::DeserializeOwned`.
//!
//! Unlike real serde's visitor architecture, serialization here goes
//! through an owned JSON-like [`Value`] tree; `serde_json` (also vendored)
//! renders and parses that tree. This is dramatically simpler and entirely
//! sufficient for the workspace's result-persistence and round-trip needs.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-like value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (integers are exact below 2^53).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Looks up `name` in object entries, yielding `Null` for missing keys so
/// `Option` fields deserialize to `None` (mirrors serde's default-for-
/// missing behaviour closely enough for round-trips).
pub fn obj_field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// A type-mismatch error.
    pub fn expected(ty: &str, wanted: &str) -> Error {
        Error(format!("{ty}: expected {wanted}"))
    }

    /// An unknown-enum-variant error.
    pub fn unknown_variant(ty: &str, variant: &str) -> Error {
        Error(format!("{ty}: unknown variant `{variant}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// The `serde::de` module: only [`DeserializeOwned`] is needed here.
pub mod de {
    /// Marker for deserializable-without-borrowing types; in this facade
    /// every [`crate::Deserialize`] qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// The `serde::ser` module, for path compatibility.
pub mod ser {
    pub use crate::Serialize;
}

// ------------------------------------------------------------ primitives

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::expected(stringify!($t), "number"))
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("f64", "number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::expected("bool", "boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("String", "string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .and_then(|s| {
                let mut it = s.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Some(c),
                    _ => None,
                }
            })
            .ok_or_else(|| Error::expected("char", "single-character string"))
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::expected("Vec", "array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::expected("BTreeMap", "object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::expected("HashMap", "object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+ $(,)?))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_arr().ok_or_else(|| Error::expected("tuple", "array"))?;
                let expect = [$($idx,)+].len();
                if arr.len() != expect {
                    return Err(Error::expected("tuple", "array of matching arity"));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<f64>::from_value(&Value::Num(2.5)), Ok(Some(2.5)));
    }

    #[test]
    fn tuples_round_trip_as_arrays() {
        let v = (1.5f64, 2u32).to_value();
        assert_eq!(v, Value::Arr(vec![Value::Num(1.5), Value::Num(2.0)]));
        assert_eq!(<(f64, u32)>::from_value(&v), Ok((1.5, 2)));
    }

    #[test]
    fn missing_object_field_reads_as_null() {
        let entries = vec![("a".to_string(), Value::Num(1.0))];
        assert_eq!(obj_field(&entries, "a"), &Value::Num(1.0));
        assert_eq!(obj_field(&entries, "b"), &Value::Null);
    }
}
