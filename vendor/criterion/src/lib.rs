//! Offline stand-in for the `criterion` crate: a compact wall-clock
//! micro-benchmark harness exposing the subset of the API the workspace's
//! benches use (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`,
//! `black_box`).
//!
//! Measurement model: per benchmark, the batch size is calibrated by
//! doubling until one batch takes ≥ ~5 ms, then `sample_size` batches are
//! timed and the median, minimum, and maximum per-iteration times are
//! reported. No plots, no statistics beyond that — but the numbers are
//! real and stable enough for before/after comparisons.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // With `harness = false`, cargo passes flags (e.g. `--bench`) plus
        // an optional free-form filter string through to the binary.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark. The id may be anything string-like
    /// (`&str`, `String`), matching upstream's `IntoBenchmarkId`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run(id.as_ref(), sample_size, f);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }

        // Calibrate: double the batch size until a batch is ≥ 5 ms (or the
        // batch is already enormous).
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            iters *= 2;
        }

        let mut per_iter_ns: Vec<f64> = (0..sample_size.max(2))
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(f64::total_cmp);

        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let max = per_iter_ns[per_iter_ns.len() - 1];
        println!(
            "bench: {id:<50} {:>12} /iter (min {}, max {}, {} samples × {iters} iters)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            per_iter_ns.len(),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run(&full, sample_size, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine for the calibrated number of iterations, timing
    /// the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 2,
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            filter: Some("nomatch-filter".into()),
            default_sample_size: 2,
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("skipped", |b| b.iter(|| ()));
        group.finish();
    }
}
