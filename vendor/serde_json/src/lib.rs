//! Offline stand-in for `serde_json`, rendering and parsing the vendored
//! `serde` [`Value`] tree.
//!
//! Provides `to_string`, `to_string_pretty`, and `from_str` — the three
//! entry points the workspace uses. Numbers are formatted with Rust's
//! shortest-round-trip `Display` for `f64`, so every finite float
//! round-trips exactly; non-finite values render as `null` (as real
//! serde_json does by default for its `arbitrary_precision`-less floats).

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

pub use serde::Error;

/// Renders a serializable value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders a serializable value as human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

// ------------------------------------------------------------- rendering

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if n.is_finite() {
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
            write_value(o, x, indent, d)
        }),
        Value::Obj(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(brackets.0);
    if items.len() == 0 {
        out.push(brackets.1);
        return;
    }
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error("trailing characters after JSON value".into()));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of JSON".into()))
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek()? == expected {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        _ => return Err(Error("unknown escape".into())),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{s}` at byte {start}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.0, -0.0, 1.5, 151.2093, -33.8688, 1.0 / 3.0, 1e-12, 4.2] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x, back, "{text}");
        }
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(to_string(&7u32).unwrap(), "7");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\tē✓";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Vec<(f64, f64)> = vec![(0.0, 8.0), (60.0, 8.9)];
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<(f64, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn options_round_trip_via_null() {
        let x: Option<f64> = None;
        assert_eq!(to_string(&x).unwrap(), "null");
        let back: Option<f64> = from_str("null").unwrap();
        assert_eq!(back, None);
    }
}
