//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the API the workspace's property tests use:
//! the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! range and tuple strategies, `prop_map`, `Just`, a printable-string
//! strategy for `&str` patterns, and `proptest::collection::vec`.
//!
//! Sampling is plain pseudo-random (xorshift64*) rather than the real
//! crate's guided generation, and failing cases are reported without
//! shrinking. Seeds derive from the test name, so runs are deterministic;
//! set `PROPTEST_CASES` to change the per-test case count (default 64).

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values for one test input.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    debug_assert!(self.start < self.end);
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() - *self.start()) as u64 + 1;
                    self.start() + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String-pattern strategy: real proptest interprets the string as a
    /// regex. This facade generates printable ASCII with a length drawn
    /// from a trailing `{min,max}` repetition bound when one is present
    /// (e.g. `"\\PC{0,200}"`), defaulting to `{0,64}`.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_repeat_bounds(self).unwrap_or((0, 64));
            let len = min + (rng.next_u64() as usize) % (max - min + 1);
            (0..len)
                .map(|_| (32 + (rng.next_u64() % 95) as u8) as char)
                .collect()
        }
    }

    fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let open = body.rfind('{')?;
        let (min_s, max_s) = body[open + 1..].split_once(',')?;
        let min = min_s.trim().parse().ok()?;
        let max = max_s.trim().parse().ok()?;
        (min <= max).then_some((min, max))
    }

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident : $idx:tt),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end);
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner plumbing: configuration, RNG, and the error type the
/// assertion macros return.
pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// A failed property within one generated case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// xorshift64* generator, seeded deterministically per test.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from the test name (FNV-1a), so every run of a given test
        /// sees the same case sequence.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            fn __proptest_case(
                __rng: &mut $crate::test_runner::TestRng,
            ) -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                $body
                ::std::result::Result::Ok(())
            }
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                if let ::std::result::Result::Err(e) = __proptest_case(&mut __rng) {
                    panic!("proptest {} failed at case {}: {}", stringify!($name), __case, e);
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current case if the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Silently skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -5.0..5.0f64, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_sizes(
            exact in collection::vec(0u32..5, 7),
            ranged in collection::vec(0.0..1.0f64, 2..6),
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!((2..6).contains(&ranged.len()));
        }

        #[test]
        fn prop_map_and_assume_work(x in (0.0..1.0f64, 0.0..1.0f64).prop_map(|(a, b)| a + b)) {
            prop_assume!(x > 0.1);
            prop_assert!(x <= 2.0);
            prop_assert_ne!(x, -1.0);
        }

        #[test]
        fn string_pattern_obeys_repeat_bounds(s in "\\PC{0,200}") {
            prop_assert!(s.chars().count() <= 200);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn config_with_cases_overrides() {
        assert_eq!(ProptestConfig::with_cases(24).cases, 24);
    }
}
