//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` facade (see `vendor/serde`).
//!
//! The build environment has no network access, so the real `serde_derive`
//! (and its `syn`/`quote` dependency tree) cannot be fetched. This crate
//! re-implements the subset of the derive the workspace needs, parsing the
//! item definition directly from the `proc_macro` token stream:
//!
//! - structs with named fields,
//! - tuple structs (newtype and n-tuple),
//! - enums with unit, tuple, and struct variants.
//!
//! Generics, lifetimes, and `#[serde(...)]` attributes are unsupported and
//! produce a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic type `{name}` is unsupported");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("derive: unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("derive: unexpected token after `enum {name}`: {other:?}"),
        },
        other => panic!("derive: expected struct or enum, found `{other}`"),
    }
}

/// Skips `#[...]` outer attributes (doc comments included).
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1; // '#'
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            other => panic!("derive: malformed attribute: {other:?}"),
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(super)`, …
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("derive: expected identifier, found {other:?}"),
    }
}

/// Field names of `{ a: T, b: U, … }`, skipping attributes, visibility,
/// and the type tokens (angle-bracket aware so `Vec<(f64, f64)>` and
/// `HashMap<K, V>` types do not confuse the comma scan).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let field = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("derive: expected `:` after field `{field}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(field);
    }
    fields
}

/// Advances past one type, stopping after the top-level `,` (or at end).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Number of fields in a tuple-struct/tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 && i + 1 < tokens.len() => count += 1,
                _ => {}
            }
        }
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Arr(vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), \
                             ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Arr(vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(vec![\
                                 (\"{vn}\".to_string(), ::serde::Value::Obj(vec![{items}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::obj_field(obj, \"{f}\"))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let obj = v.as_obj().ok_or_else(|| ::serde::Error::expected(\"{name}\", \"object\"))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: String = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let arr = v.as_arr().ok_or_else(|| ::serde::Error::expected(\"{name}\", \"array\"))?;\n\
                         if arr.len() != {arity} {{ return Err(::serde::Error::expected(\"{name}\", \"array of {arity}\")); }}\n\
                         Ok({name}({inits}))\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let inits: String = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let arr = payload.as_arr().ok_or_else(|| ::serde::Error::expected(\"{name}::{vn}\", \"array\"))?;\n\
                                     if arr.len() != {n} {{ return Err(::serde::Error::expected(\"{name}::{vn}\", \"array of {n}\")); }}\n\
                                     return Ok({name}::{vn}({inits}));\n\
                                 }}"
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::obj_field(obj, \"{f}\"))?,"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let obj = payload.as_obj().ok_or_else(|| ::serde::Error::expected(\"{name}::{vn}\", \"object\"))?;\n\
                                     return Ok({name}::{vn} {{ {inits} }});\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         if let Some(s) = v.as_str() {{\n\
                             match s {{ {unit_arms} _ => return Err(::serde::Error::unknown_variant(\"{name}\", s)) }}\n\
                         }}\n\
                         if let Some(obj) = v.as_obj() {{\n\
                             if obj.len() == 1 {{\n\
                                 let (tag, payload) = (&obj[0].0, &obj[0].1);\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{ {payload_arms} _ => return Err(::serde::Error::unknown_variant(\"{name}\", tag)) }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::expected(\"{name}\", \"string or single-key object\"))\n\
                     }}\n\
                 }}"
            )
        }
    }
}
